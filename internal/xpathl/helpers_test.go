package xpathl

import (
	"testing"

	"xmlproj/internal/xpath"
)

func step(a xpath.Axis, name string) SStep {
	if name == "" {
		return SStep{Axis: a, Test: xpath.NodeTestNode}
	}
	return SStep{Axis: a, Test: xpath.NameTest(name)}
}

func TestPathClone(t *testing.T) {
	p := &Path{Absolute: true, Steps: []Step{{SStep: step(xpath.Child, "a")}}}
	c := p.Clone()
	c.Steps[0].SStep = step(xpath.Child, "b")
	if p.Steps[0].Test.Name != "a" {
		t.Fatal("Clone aliases steps")
	}
	if !c.Absolute {
		t.Fatal("Clone lost Absolute")
	}
}

func TestPathAppendStep(t *testing.T) {
	p := &Path{Steps: []Step{{SStep: step(xpath.Child, "a")}}}
	q := p.AppendStep(step(xpath.DescendantOrSelf, ""))
	if q.String() != "child::a/descendant-or-self::node()" {
		t.Fatalf("AppendStep = %s", q)
	}
	// Appending self::node() is the identity.
	r := p.AppendStep(step(xpath.Self, ""))
	if r.String() != "child::a" {
		t.Fatalf("self append = %s", r)
	}
	if len(p.Steps) != 1 {
		t.Fatal("AppendStep mutated the receiver")
	}
}

func TestConcat(t *testing.T) {
	prefix := &Path{Absolute: true, Steps: []Step{{SStep: step(xpath.Self, "site")}}}
	rel := &Path{Steps: []Step{
		{SStep: step(xpath.Self, "")}, // dropped: identity step
		{SStep: step(xpath.Child, "people")},
	}}
	got := Concat(prefix, rel)
	if got.String() != "/self::site/child::people" {
		t.Fatalf("Concat = %s", got)
	}
	// An absolute right side wins.
	abs := &Path{Absolute: true, Steps: []Step{{SStep: step(xpath.Child, "x")}}}
	if got := Concat(prefix, abs); got.String() != "/child::x" {
		t.Fatalf("Concat abs = %s", got)
	}
	// A conditioned self step is NOT dropped (it filters).
	condRel := &Path{Steps: []Step{{
		SStep: step(xpath.Self, ""),
		Cond:  &Cond{Disjuncts: []SimplePath{SelfNode()}},
	}}}
	if got := Concat(prefix, condRel); len(got.Steps) != 2 {
		t.Fatalf("conditioned self dropped: %s", got)
	}
}

func TestFromSimple(t *testing.T) {
	sp := SimplePath{Absolute: true, Steps: []SStep{step(xpath.Child, "a")}}
	p := FromSimple(sp)
	if p.String() != "/child::a" {
		t.Fatalf("FromSimple = %s", p)
	}
	if back, ok := p.Simple(); !ok || back.String() != sp.String() {
		t.Fatalf("Simple round trip = %v %s", ok, back)
	}
}

func TestMakeAbsolute(t *testing.T) {
	cases := map[string]string{
		"child::a/child::b":      "/self::a/child::b",
		"descendant::a":          "/descendant-or-self::a",
		"self::a":                "/self::a",
		"parent::node()/self::a": "/parent::node()/self::a", // degenerate, unchanged shape
	}
	for src, want := range cases {
		ps, err := FromQuery(xpath.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if got := MakeAbsolute(ps[0]).String(); got != want {
			t.Errorf("MakeAbsolute(%s) = %s, want %s", src, got, want)
		}
	}
	// Already-absolute paths are untouched.
	ps, _ := FromQuery(xpath.MustParse("/a/b"))
	if got := MakeAbsolute(ps[0]).String(); got != ps[0].String() {
		t.Fatalf("MakeAbsolute changed an absolute path: %s", got)
	}
}

func TestApproxNegationAndArithmetic(t *testing.T) {
	// Unary minus and arithmetic are value contexts: paths get dos, plus
	// the self::node() safety disjunct for the non-structural part.
	ps := MustFromQuery(xpath.MustParse(`x[-a = 1]`))
	cond := ps[0].Steps[0].Cond
	var hasDos bool
	for _, d := range cond.Disjuncts {
		if d.String() == "child::a/descendant-or-self::node()" {
			hasDos = true
		}
	}
	if !hasDos {
		t.Fatalf("negated operand lost its dos: %s", cond)
	}
	ps = MustFromQuery(xpath.MustParse(`x[a + b > 2]`))
	cond = ps[0].Steps[0].Cond
	var hasA, hasB bool
	for _, d := range cond.Disjuncts {
		switch d.String() {
		case "child::a/descendant-or-self::node()":
			hasA = true
		case "child::b/descendant-or-self::node()":
			hasB = true
		}
	}
	if !hasA || !hasB || !cond.HasSelfNode() {
		t.Fatalf("arithmetic condition wrong: %s", cond)
	}
}

func TestApproxUnionInPredicate(t *testing.T) {
	ps := MustFromQuery(xpath.MustParse(`x[a | b]`))
	cond := ps[0].Steps[0].Cond
	if len(cond.Disjuncts) != 2 {
		t.Fatalf("union predicate = %s", cond)
	}
}

func TestCondAddDedups(t *testing.T) {
	c := &Cond{}
	c.add(SelfNode())
	c.add(SelfNode())
	if len(c.Disjuncts) != 1 {
		t.Fatalf("duplicate disjunct kept: %s", c)
	}
}

func TestFuncArgAxisTable(t *testing.T) {
	selfFns := []string{"count", "not", "empty", "exists", "position", "boolean"}
	dosFns := []string{"string", "contains", "sum", "number", "normalize-space", "anything-unknown"}
	for _, f := range selfFns {
		if FuncArgAxis(f, 0).Axis != xpath.Self {
			t.Errorf("F(%s) should be self", f)
		}
	}
	for _, f := range dosFns {
		if FuncArgAxis(f, 0).Axis != xpath.DescendantOrSelf {
			t.Errorf("F(%s) should be descendant-or-self", f)
		}
	}
}

// Regression: a truthy constant disjunct makes the whole condition
// non-restricting — [2 or P] is always true, so self::node() must be
// present. Found by the random-DTD soundness fuzzer
// (prune.TestFuzzSoundnessNonRecursiveDTDs, dtd seed 7).
func TestApproxTruthyConstantDisjunct(t *testing.T) {
	for _, src := range []string{
		`x[2 or a/b]`,
		`x[1 or following-sibling::y/node()]`,
		`x["s" or a]`,
	} {
		ps := MustFromQuery(xpath.MustParse(src))
		cond := ps[0].Steps[0].Cond
		if !cond.HasSelfNode() {
			t.Errorf("%s: truthy constant disjunct must neutralise restriction: %s", src, cond)
		}
	}
	// A falsy constant disjunct can never satisfy the predicate: the other
	// disjunct may still restrict.
	ps := MustFromQuery(xpath.MustParse(`x[0 or a]`))
	if cond := ps[0].Steps[0].Cond; cond.HasSelfNode() {
		t.Errorf("falsy constant should not block restriction: %s", cond)
	}
	// …and value comparisons against constants still restrict (the §3.3
	// Dante example shape).
	ps = MustFromQuery(xpath.MustParse(`x[a = "v" or b]`))
	if cond := ps[0].Steps[0].Cond; cond.HasSelfNode() {
		t.Errorf("comparison operand must not produce self::node(): %s", cond)
	}
}

func TestSimplePathPrefixEmpty(t *testing.T) {
	// Prefixing self::node() with nothing yields self::node().
	sp := SelfNode().Prefix(nil)
	if !sp.IsSelfNode() {
		t.Fatalf("Prefix(nil) = %s", sp)
	}
}
