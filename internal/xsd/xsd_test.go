package xsd

import (
	"strings"
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/dtd"
	"xmlproj/internal/prune"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

const bibXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="bib">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="book" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="book">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="title" type="xs:string"/>
        <xs:element name="author" type="xs:string" maxOccurs="unbounded"/>
        <xs:element name="year" type="xs:integer" minOccurs="0"/>
      </xs:sequence>
      <xs:attribute name="isbn" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func TestParseBibXSD(t *testing.T) {
	d, err := ParseString(bibXSD, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "bib" {
		t.Fatalf("root = %s", d.Root)
	}
	book := d.Def("book")
	if book == nil {
		t.Fatal("book missing")
	}
	if got := book.Content.String(); got != "(title, author+, year?)" {
		t.Fatalf("book content = %s", got)
	}
	if book.AttDef("isbn") == nil {
		t.Fatal("isbn attribute lost")
	}
	// Simple-typed elements became text elements.
	if td := d.Def(dtd.TextName("title")); td == nil || !td.Text {
		t.Fatal("title text name missing")
	}

	doc, err := tree.ParseString(`<bib><book isbn="1"><title>t</title><author>a</author></book></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := validate.Document(d, doc); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad, _ := tree.ParseString(`<bib><book isbn="1"><author>a</author><title>t</title></book></bib>`)
	if _, err := validate.Document(d, bad); err == nil {
		t.Fatal("sequence order violation accepted")
	}
}

func TestNamedTypeReference(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library" type="shelfType"/>
  <xs:complexType name="shelfType">
    <xs:sequence>
      <xs:element name="shelf" type="shelfContent" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="shelfContent">
    <xs:choice>
      <xs:element name="novel" type="xs:string"/>
      <xs:element name="atlas" type="xs:string"/>
    </xs:choice>
  </xs:complexType>
</xs:schema>`
	d, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Def("shelf").Content.String(); got != "(novel | atlas)" {
		t.Fatalf("shelf content = %s", got)
	}
}

func TestMixedContent(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="p">
    <xs:complexType mixed="true">
      <xs:sequence>
        <xs:element name="em" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	d, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := tree.ParseString(`<p>one <em>two</em> three</p>`)
	if _, err := validate.Document(d, doc); err != nil {
		t.Fatalf("mixed instance rejected: %v", err)
	}
}

// The footnote's "special treatment of local elements": the same tag with
// two different local types merges into one sound declaration.
func TestLocalElementsMerged(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="a">
          <xs:complexType><xs:sequence>
            <xs:element name="item" type="xs:string"/>
          </xs:sequence></xs:complexType>
        </xs:element>
        <xs:element name="b">
          <xs:complexType><xs:sequence>
            <xs:element name="item">
              <xs:complexType><xs:sequence>
                <xs:element name="deep" type="xs:string"/>
              </xs:sequence></xs:complexType>
            </xs:element>
          </xs:sequence></xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	d, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	// item occurs with text content under a and with a deep child under b:
	// the merged declaration must allow both.
	for _, docSrc := range []string{
		`<r><a><item>text</item></a><b><item><deep>x</deep></item></b></r>`,
	} {
		doc, _ := tree.ParseString(docSrc)
		if _, err := validate.Document(d, doc); err != nil {
			t.Fatalf("merged-locals instance rejected: %v\ngrammar:\n%s", err, d)
		}
	}
}

func TestXsAllOverApproximated(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="cfg">
    <xs:complexType>
      <xs:all>
        <xs:element name="host" type="xs:string"/>
        <xs:element name="port" type="xs:integer"/>
      </xs:all>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	d, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	// Both orders validate (xs:all is order-free).
	for _, docSrc := range []string{
		`<cfg><host>h</host><port>80</port></cfg>`,
		`<cfg><port>80</port><host>h</host></cfg>`,
	} {
		doc, _ := tree.ParseString(docSrc)
		if _, err := validate.Document(d, doc); err != nil {
			t.Fatalf("%s rejected: %v", docSrc, err)
		}
	}
}

// End to end: infer a projector from an XSD-derived grammar and prune.
func TestXSDProjectorSoundness(t *testing.T) {
	d, err := ParseString(bibXSD, "")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := tree.ParseString(`<bib>
<book isbn="1"><title>Commedia</title><author>Dante</author><year>1313</year></book>
<book isbn="2"><title>Decameron</title><author>Boccaccio</author></book>
</bib>`)
	q := xpath.MustParse(`//book[year]/title`)
	paths, err := xpathl.FromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.InferMaterialized(d, paths)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Has("author") || pr.Has(dtd.TextName("author")) {
		t.Fatalf("projector keeps authors: %s", pr)
	}
	pruned := prune.Tree(d, doc, pr.Names)
	before, _ := xpath.NewEvaluator(doc).Select(q)
	after, err := xpath.NewEvaluator(pruned).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) || before[0].StringValue() != after[0].StringValue() {
		t.Fatalf("XSD-based pruning changed the result")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty schema": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>`,
		"unknown type": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="a" type="nosuchType"/></xs:schema>`,
		"nameless":     `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element/></xs:schema>`,
		"not xml":      `{"not": "xml"}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseString(src, ""); err == nil {
				t.Fatalf("accepted: %s", src)
			}
		})
	}
}

func TestOccursMapping(t *testing.T) {
	cases := map[[2]string]string{
		{"", ""}:           "",
		{"0", "1"}:         "?",
		{"0", ""}:          "?",
		{"1", "unbounded"}: "+",
		{"", "unbounded"}:  "+",
		{"0", "unbounded"}: "*",
		{"2", "5"}:         "*",
	}
	for in, want := range cases {
		if got := occurs(in[0], in[1]); got != want {
			t.Errorf("occurs(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
	if !strings.Contains("?*+", occurs("0", "unbounded")) {
		t.Fatal("sanity")
	}
}
