// Package xsd implements the paper's footnote-1 extension: "the extension
// of our approach to XML Schema simply needs some special treatment of
// local elements". It parses a practical subset of XML Schema and lowers
// it to the local tree grammar the analysis already understands.
//
// Supported constructs: top-level and local xs:element (inline complex
// types or type references), xs:complexType (top-level and anonymous),
// xs:sequence / xs:choice / xs:all, minOccurs / maxOccurs, xs:attribute,
// mixed content, simple-typed elements (any xs:* simple type becomes
// text). Namespaces other than the XML Schema namespace itself are not
// interpreted.
//
// The special treatment of local elements: a local tree grammar requires
// one content model per tag, while XSD allows the same tag to have
// different local types in different contexts. When that happens the
// lowering merges the declarations — the content model becomes the
// star-guarded union of every observed content, attributes are unioned —
// which over-approximates the schema and therefore keeps projector
// inference sound (π is inferred against a grammar at least as permissive
// as the schema).
package xsd

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"xmlproj/internal/dtd"
)

// schema mirrors the XSD XML structure (xs namespace).
type schema struct {
	XMLName  xml.Name      `xml:"schema"`
	Elements []element     `xml:"element"`
	Types    []complexType `xml:"complexType"`
}

type element struct {
	Name      string       `xml:"name,attr"`
	Type      string       `xml:"type,attr"`
	Ref       string       `xml:"ref,attr"`
	MinOccurs string       `xml:"minOccurs,attr"`
	MaxOccurs string       `xml:"maxOccurs,attr"`
	Complex   *complexType `xml:"complexType"`
}

type complexType struct {
	Name       string      `xml:"name,attr"`
	Mixed      string      `xml:"mixed,attr"`
	Sequence   *group      `xml:"sequence"`
	Choice     *group      `xml:"choice"`
	All        *group      `xml:"all"`
	Attributes []attribute `xml:"attribute"`
}

type group struct {
	MinOccurs string    `xml:"minOccurs,attr"`
	MaxOccurs string    `xml:"maxOccurs,attr"`
	Elements  []element `xml:"element"`
	Sequences []group   `xml:"sequence"`
	Choices   []group   `xml:"choice"`
}

type attribute struct {
	Name string `xml:"name,attr"`
	Use  string `xml:"use,attr"`
}

// Parse reads an XML Schema and lowers it to a DTD (local tree grammar).
// rootTag selects the root element; if empty, the first top-level element
// declaration is used.
func Parse(r io.Reader, rootTag string) (*dtd.DTD, error) {
	var s schema
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	if len(s.Elements) == 0 {
		return nil, fmt.Errorf("xsd: no top-level element declarations")
	}
	l := &lowerer{
		named: map[string]*complexType{},
		decls: map[string]*decl{},
	}
	for i := range s.Types {
		if s.Types[i].Name != "" {
			l.named[s.Types[i].Name] = &s.Types[i]
		}
	}
	for i := range s.Elements {
		l.topLevel = append(l.topLevel, s.Elements[i].Name)
		if err := l.element(&s.Elements[i]); err != nil {
			return nil, err
		}
	}
	if rootTag == "" {
		rootTag = s.Elements[0].Name
	}
	src, err := l.render()
	if err != nil {
		return nil, err
	}
	return dtd.ParseString(src, rootTag)
}

// ParseString is Parse over a string.
func ParseString(src, rootTag string) (*dtd.DTD, error) {
	return Parse(strings.NewReader(src), rootTag)
}

// decl accumulates the (possibly merged) declaration of one tag.
type decl struct {
	// contents collects one rendered content model per occurrence of the
	// tag; more than one triggers the local-element merge.
	contents []string
	mixed    bool
	hasText  bool
	attrs    map[string]bool
	order    int
}

type lowerer struct {
	named    map[string]*complexType
	decls    map[string]*decl
	topLevel []string
	count    int
}

func (l *lowerer) get(tag string) *decl {
	if d, ok := l.decls[tag]; ok {
		return d
	}
	d := &decl{attrs: map[string]bool{}, order: l.count}
	l.count++
	l.decls[tag] = d
	return d
}

// element registers an element declaration and recursively its locals.
func (l *lowerer) element(e *element) error {
	if e.Ref != "" {
		return nil // a reference to a (top-level) declaration
	}
	if e.Name == "" {
		return fmt.Errorf("xsd: element without name or ref")
	}
	d := l.get(e.Name)
	ct := e.Complex
	if ct == nil && e.Type != "" {
		if named, ok := l.named[trimNS(e.Type)]; ok {
			ct = named
		} else if isSimpleType(e.Type) {
			d.hasText = true
			return nil
		} else {
			return fmt.Errorf("xsd: element %s references unknown type %s", e.Name, e.Type)
		}
	}
	if ct == nil {
		// No type at all: xs:anyType-ish; treat as text-only.
		d.hasText = true
		return nil
	}
	if ct.Mixed == "true" {
		d.mixed = true
	}
	for _, a := range ct.Attributes {
		d.attrs[a.Name] = true
	}
	var g *group
	switch {
	case ct.Sequence != nil:
		g = ct.Sequence
	case ct.Choice != nil:
		g = ct.Choice
	case ct.All != nil:
		g = ct.All
	}
	if g == nil {
		if !d.mixed {
			d.contents = append(d.contents, "") // EMPTY (attributes only)
		}
		return nil
	}
	kind := "seq"
	if ct.Choice != nil {
		kind = "choice"
	} else if ct.All != nil {
		// xs:all: order-free; the grammar over-approximates it as a
		// star-guarded union (sound: every permutation matches).
		kind = "all"
	}
	content, err := l.group(g, kind)
	if err != nil {
		return fmt.Errorf("xsd: element %s: %w", e.Name, err)
	}
	d.contents = append(d.contents, content)
	return nil
}

// group renders a model group as DTD content-model syntax, recursing into
// nested groups and registering local element declarations.
func (l *lowerer) group(g *group, kind string) (string, error) {
	var parts []string
	for i := range g.Elements {
		e := &g.Elements[i]
		if err := l.element(e); err != nil {
			return "", err
		}
		name := e.Name
		if name == "" {
			name = trimNS(e.Ref)
		}
		parts = append(parts, name+occurs(e.MinOccurs, e.MaxOccurs))
	}
	for i := range g.Sequences {
		sub, err := l.group(&g.Sequences[i], "seq")
		if err != nil {
			return "", err
		}
		parts = append(parts, "("+sub+")"+occurs(g.Sequences[i].MinOccurs, g.Sequences[i].MaxOccurs))
	}
	for i := range g.Choices {
		sub, err := l.group(&g.Choices[i], "choice")
		if err != nil {
			return "", err
		}
		parts = append(parts, "("+sub+")"+occurs(g.Choices[i].MinOccurs, g.Choices[i].MaxOccurs))
	}
	if len(parts) == 0 {
		return "", nil
	}
	switch kind {
	case "choice":
		return strings.Join(parts, " | "), nil
	case "all":
		// (a | b | …)* over-approximates any interleaving; occurrence
		// bounds inside xs:all are rare and also absorbed by the star.
		stripped := make([]string, len(parts))
		for i, p := range parts {
			stripped[i] = strings.TrimRight(p, "?*+")
		}
		return "(" + strings.Join(stripped, " | ") + ")*", nil
	default:
		return strings.Join(parts, ", "), nil
	}
}

// render emits the accumulated declarations as DTD source.
func (l *lowerer) render() (string, error) {
	tags := make([]string, 0, len(l.decls))
	for t := range l.decls {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return l.decls[tags[i]].order < l.decls[tags[j]].order })

	var sb strings.Builder
	for _, tag := range tags {
		d := l.decls[tag]
		content := mergeContents(d)
		fmt.Fprintf(&sb, "<!ELEMENT %s %s>\n", tag, content)
		if len(d.attrs) > 0 {
			names := make([]string, 0, len(d.attrs))
			for a := range d.attrs {
				names = append(names, a)
			}
			sort.Strings(names)
			fmt.Fprintf(&sb, "<!ATTLIST %s", tag)
			for _, a := range names {
				fmt.Fprintf(&sb, " %s CDATA #IMPLIED", a)
			}
			sb.WriteString(">\n")
		}
	}
	return sb.String(), nil
}

// mergeContents produces one DTD content spec from the collected
// occurrences of a tag (the local-element treatment).
func mergeContents(d *decl) string {
	var nonEmpty []string
	for _, c := range d.contents {
		if c != "" {
			nonEmpty = append(nonEmpty, c)
		}
	}
	textish := d.mixed || d.hasText
	switch {
	case len(nonEmpty) == 0 && !textish:
		return "EMPTY"
	case len(nonEmpty) == 0:
		return "(#PCDATA)"
	case len(nonEmpty) == 1 && !textish:
		return "(" + nonEmpty[0] + ")"
	default:
		// Multiple local declarations or mixed content: star-guarded union
		// of every referenced name (sound over-approximation).
		names := map[string]bool{}
		for _, c := range nonEmpty {
			for _, tok := range strings.FieldsFunc(c, func(r rune) bool {
				return r == ',' || r == '|' || r == '(' || r == ')' || r == ' ' ||
					r == '?' || r == '*' || r == '+'
			}) {
				if tok != "" {
					names[tok] = true
				}
			}
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		parts := sorted
		if textish {
			parts = append([]string{"#PCDATA"}, parts...)
		}
		return "(" + strings.Join(parts, " | ") + ")*"
	}
}

func occurs(min, max string) string {
	switch {
	case max == "unbounded" && (min == "" || min == "1"):
		return "+"
	case max == "unbounded":
		return "*"
	case min == "0" && (max == "" || max == "1"):
		return "?"
	case min == "0":
		return "*"
	case max != "" && max != "1":
		return "*" // bounded repetition over-approximated by *
	default:
		return ""
	}
}

func trimNS(s string) string {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func isSimpleType(t string) bool {
	t = trimNS(t)
	switch t {
	case "string", "integer", "int", "long", "short", "decimal", "float",
		"double", "boolean", "date", "dateTime", "time", "anyURI", "token",
		"normalizedString", "ID", "IDREF", "NMTOKEN", "positiveInteger",
		"nonNegativeInteger", "anySimpleType":
		return true
	}
	return false
}
