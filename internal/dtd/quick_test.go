package dtd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// naiveMatch is a reference regex matcher (derivative-free backtracking
// over the structure) used to cross-check the compiled DFA.
func naiveMatch(r Regex, seq []Name) bool {
	ends := naiveEnds(r, seq, 0)
	for _, e := range ends {
		if e == len(seq) {
			return true
		}
	}
	return false
}

// naiveEnds returns the positions reachable after matching r starting at
// position from.
func naiveEnds(r Regex, seq []Name, from int) []int {
	switch x := r.(type) {
	case Epsilon, nil:
		return []int{from}
	case Ref:
		if from < len(seq) && seq[from] == x.Name {
			return []int{from + 1}
		}
		return nil
	case Seq:
		pos := []int{from}
		for _, it := range x.Items {
			var next []int
			for _, p := range pos {
				next = append(next, naiveEnds(it, seq, p)...)
			}
			pos = dedupInts(next)
			if len(pos) == 0 {
				return nil
			}
		}
		return pos
	case Alt:
		var out []int
		for _, it := range x.Items {
			out = append(out, naiveEnds(it, seq, from)...)
		}
		return dedupInts(out)
	case Star:
		return naiveStar(x.Inner, seq, from)
	case Plus:
		var out []int
		for _, p := range naiveEnds(x.Inner, seq, from) {
			out = append(out, naiveStar(x.Inner, seq, p)...)
		}
		return dedupInts(out)
	case Opt:
		return dedupInts(append([]int{from}, naiveEnds(x.Inner, seq, from)...))
	}
	return nil
}

func naiveStar(inner Regex, seq []Name, from int) []int {
	seen := map[int]bool{from: true}
	work := []int{from}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		for _, q := range naiveEnds(inner, seq, p) {
			if q > p && !seen[q] { // progress only: avoid ε-loops
				seen[q] = true
				work = append(work, q)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	return out
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// randomRegex draws a random content model over a tiny alphabet.
func randomRegex(rng *rand.Rand, depth int) Regex {
	if depth <= 0 {
		if rng.Intn(4) == 0 {
			return Epsilon{}
		}
		return Ref{alphabet[rng.Intn(len(alphabet))]}
	}
	switch rng.Intn(6) {
	case 0:
		return Ref{alphabet[rng.Intn(len(alphabet))]}
	case 1:
		return Seq{[]Regex{randomRegex(rng, depth-1), randomRegex(rng, depth-1)}}
	case 2:
		return Alt{[]Regex{randomRegex(rng, depth-1), randomRegex(rng, depth-1)}}
	case 3:
		return Star{randomRegex(rng, depth-1)}
	case 4:
		return Plus{randomRegex(rng, depth-1)}
	default:
		return Opt{randomRegex(rng, depth-1)}
	}
}

var alphabet = []Name{"a", "b", "c"}

// TestQuickDFAAgreesWithNaive cross-checks the compiled automaton against
// the reference matcher on random regexes and random sequences.
func TestQuickDFAAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		r := randomRegex(rng, 3)
		dfa := CompileRegex(r)
		for s := 0; s < 25; s++ {
			n := rng.Intn(6)
			seq := make([]Name, n)
			for i := range seq {
				seq[i] = alphabet[rng.Intn(len(alphabet))]
			}
			want := naiveMatch(r, seq)
			if got := dfa.Matches(seq); got != want {
				t.Fatalf("regex %s on %v: dfa=%v naive=%v", r, seq, got, want)
			}
		}
	}
}

// TestQuickNameSetAlgebra checks the set-algebra laws the analysis relies
// on.
func TestQuickNameSetAlgebra(t *testing.T) {
	mk := func(bits uint8) NameSet {
		s := NameSet{}
		for i, n := range []Name{"a", "b", "c", "d", "e"} {
			if bits&(1<<i) != 0 {
				s.Add(n)
			}
		}
		return s
	}
	type lawFn func(a, b, c uint8) bool
	laws := map[string]lawFn{
		"union-commutes": func(a, b, _ uint8) bool {
			return mk(a).Union(mk(b)).Equal(mk(b).Union(mk(a)))
		},
		"intersect-commutes": func(a, b, _ uint8) bool {
			return mk(a).Intersect(mk(b)).Equal(mk(b).Intersect(mk(a)))
		},
		"union-assoc": func(a, b, c uint8) bool {
			return mk(a).Union(mk(b)).Union(mk(c)).Equal(mk(a).Union(mk(b).Union(mk(c))))
		},
		"distributivity": func(a, b, c uint8) bool {
			l := mk(a).Intersect(mk(b).Union(mk(c)))
			r := mk(a).Intersect(mk(b)).Union(mk(a).Intersect(mk(c)))
			return l.Equal(r)
		},
		"minus-disjoint": func(a, b, _ uint8) bool {
			return mk(a).Minus(mk(b)).Intersect(mk(b)).Empty()
		},
		"union-covers": func(a, b, _ uint8) bool {
			u := mk(a).Union(mk(b))
			for n := range mk(a) {
				if !u.Has(n) {
					return false
				}
			}
			return true
		},
	}
	for name, law := range laws {
		law := law
		if err := quick.Check(func(a, b, c uint8) bool { return law(a, b, c) }, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestQuickCloneIsDeep uses quick to confirm Clone never aliases.
func TestQuickCloneIsDeep(t *testing.T) {
	f := func(names []string) bool {
		s := NameSet{}
		for _, n := range names {
			if n != "" {
				s.Add(Name(n))
			}
		}
		c := s.Clone()
		c.Add("sentinel-name")
		return !s.Has("sentinel-name") || len(names) > 0 && s.Has("sentinel-name") == false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Values: func(vs []reflect.Value, r *rand.Rand) {
		n := r.Intn(5)
		names := make([]string, n)
		for i := range names {
			names[i] = string(alphabet[r.Intn(len(alphabet))])
		}
		vs[0] = reflect.ValueOf(names)
	}}); err != nil {
		t.Error(err)
	}
}
