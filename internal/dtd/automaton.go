package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// DFA is a deterministic automaton over names, compiled from a content
// model by Thompson construction followed by subset construction. Content
// models are tiny, so eager determinisation is cheap; matching a child
// sequence is then a single table walk per node.
type DFA struct {
	// trans[state][name] = next state; missing entry is a dead state.
	trans []map[Name]int
	// accept[state] reports whether the state is accepting.
	accept []bool
}

// Start returns the start state.
func (a *DFA) Start() int { return 0 }

// Next returns the successor state, or -1 for the dead state.
func (a *DFA) Next(state int, n Name) int {
	if state < 0 {
		return -1
	}
	next, ok := a.trans[state][n]
	if !ok {
		return -1
	}
	return next
}

// Accepting reports whether state is accepting.
func (a *DFA) Accepting(state int) bool {
	return state >= 0 && a.accept[state]
}

// Matches reports whether the sequence of names is in the language.
func (a *DFA) Matches(seq []Name) bool {
	s := a.Start()
	for _, n := range seq {
		s = a.Next(s, n)
		if s < 0 {
			return false
		}
	}
	return a.Accepting(s)
}

// Automaton returns the compiled content-model automaton for the
// definition, building it on first use.
func (def *Def) Automaton() *DFA {
	if def.dfa == nil {
		def.dfa = CompileRegex(def.Content)
	}
	return def.dfa
}

// --- NFA (Thompson construction) ---

type nfa struct {
	// eps[i] lists ε-successors of state i.
	eps [][]int
	// edges[i] maps a name to successors.
	edges []map[Name][]int
	start int
	final int
}

func newNFA() *nfa { return &nfa{} }

func (m *nfa) newState() int {
	m.eps = append(m.eps, nil)
	m.edges = append(m.edges, nil)
	return len(m.eps) - 1
}

func (m *nfa) addEps(from, to int) { m.eps[from] = append(m.eps[from], to) }

func (m *nfa) addEdge(from int, n Name, to int) {
	if m.edges[from] == nil {
		m.edges[from] = map[Name][]int{}
	}
	m.edges[from][n] = append(m.edges[from][n], to)
}

// build constructs the fragment for r between fresh states and returns
// (entry, exit).
func (m *nfa) build(r Regex) (int, int) {
	in, out := m.newState(), m.newState()
	switch x := r.(type) {
	case Epsilon, nil:
		m.addEps(in, out)
	case Ref:
		m.addEdge(in, x.Name, out)
	case Seq:
		prev := in
		for _, it := range x.Items {
			i, o := m.build(it)
			m.addEps(prev, i)
			prev = o
		}
		m.addEps(prev, out)
	case Alt:
		for _, it := range x.Items {
			i, o := m.build(it)
			m.addEps(in, i)
			m.addEps(o, out)
		}
	case Star:
		i, o := m.build(x.Inner)
		m.addEps(in, i)
		m.addEps(in, out)
		m.addEps(o, i)
		m.addEps(o, out)
	case Plus:
		i, o := m.build(x.Inner)
		m.addEps(in, i)
		m.addEps(o, i)
		m.addEps(o, out)
	case Opt:
		i, o := m.build(x.Inner)
		m.addEps(in, i)
		m.addEps(in, out)
		m.addEps(o, out)
	default:
		panic(fmt.Sprintf("dtd: unknown regex node %T", r))
	}
	return in, out
}

func (m *nfa) closure(states []int) []int {
	seen := map[int]bool{}
	var stack []int
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// CompileRegex compiles a content model into a DFA.
func CompileRegex(r Regex) *DFA {
	m := newNFA()
	in, out := m.build(r)
	m.start, m.final = in, out

	key := func(states []int) string {
		var sb strings.Builder
		for _, s := range states {
			fmt.Fprintf(&sb, "%d,", s)
		}
		return sb.String()
	}

	dfa := &DFA{}
	index := map[string]int{}
	var sets [][]int

	addState := func(states []int) int {
		k := key(states)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, states)
		dfa.trans = append(dfa.trans, map[Name]int{})
		acc := false
		for _, s := range states {
			if s == m.final {
				acc = true
				break
			}
		}
		dfa.accept = append(dfa.accept, acc)
		return id
	}

	start := addState(m.closure([]int{m.start}))
	_ = start
	for work := 0; work < len(sets); work++ {
		states := sets[work]
		moves := map[Name][]int{}
		for _, s := range states {
			for n, tos := range m.edges[s] {
				moves[n] = append(moves[n], tos...)
			}
		}
		for n, tos := range moves {
			id := addState(m.closure(tos))
			dfa.trans[work][n] = id
		}
	}
	return dfa
}
