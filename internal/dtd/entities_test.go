package dtd

import (
	"strings"
	"testing"
)

// An XHTML-style fragment: entities defining content groups, an entity
// referencing another entity, and conditional sections keyed by entities.
const xhtmlish = `
<!ENTITY % special "br | span">
<!ENTITY % fontstyle "i | b">
<!ENTITY % inline "#PCDATA | %special; | %fontstyle;">
<!ENTITY % strict "INCLUDE">
<!ENTITY % loose "IGNORE">

<!ELEMENT html (body)>
<!ELEMENT body (p*)>
<!ELEMENT p (%inline;)*>
<!ELEMENT br EMPTY>
<!ELEMENT span (%inline;)*>
<!ELEMENT i (%inline;)*>
<!ELEMENT b (%inline;)*>

<![%strict;[
<!ATTLIST p class CDATA #IMPLIED>
]]>
<![%loose;[
<!ATTLIST p align CDATA #IMPLIED>
]]>
`

func TestExpandParameterEntities(t *testing.T) {
	d, err := ParseWithEntities(xhtmlish, "html")
	if err != nil {
		t.Fatal(err)
	}
	p := d.Def("p")
	if p == nil {
		t.Fatal("p not declared")
	}
	names := RegexNames(p.Content)
	for _, want := range []Name{TextName("p"), "br", "span", "i", "b"} {
		if !names.Has(want) {
			t.Fatalf("p content misses %s (entity expansion broken): %s", want, names)
		}
	}
	// The INCLUDE section applied, the IGNORE one did not.
	if p.AttDef("class") == nil {
		t.Fatal("INCLUDE conditional section dropped")
	}
	if p.AttDef("align") != nil {
		t.Fatal("IGNORE conditional section applied")
	}
}

func TestExpandNestedEntityUse(t *testing.T) {
	src := `
<!ENTITY % leaf "x">
<!ENTITY % pair "%leaf;, %leaf;">
<!ELEMENT r (%pair;)>
<!ELEMENT x (#PCDATA)>
`
	d, err := ParseWithEntities(src, "r")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Def("r").Content.String(); !strings.Contains(got, "x, x") {
		t.Fatalf("r content = %s", got)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := map[string]string{
		"undefined":         `<!ELEMENT r (%nosuch;)>`,
		"cycle":             `<!ENTITY % a "%b;"><!ENTITY % b "%a;"><!ELEMENT r (%a;)>`,
		"bad decl":          `<!ENTITY % broken>`,
		"bad cond":          `<![WHATEVER[ <!ELEMENT r EMPTY> ]]>`,
		"unterminated cond": `<![INCLUDE[ <!ELEMENT r EMPTY>`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ExpandParameterEntities(src); err == nil {
				t.Fatalf("ExpandParameterEntities(%q) succeeded, want error", src)
			}
		})
	}
}

func TestExpandLeavesGeneralEntitiesAlone(t *testing.T) {
	src := `<!ENTITY copy "&#169;"><!ELEMENT r (#PCDATA)>`
	out, err := ExpandParameterEntities(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<!ENTITY copy") {
		t.Fatalf("general entity mangled: %s", out)
	}
	if _, err := ParseString(out, "r"); err != nil {
		t.Fatal(err)
	}
}

func TestExpandPercentInAttlistSurvives(t *testing.T) {
	// A literal % that is not an entity reference must pass through.
	src := `<!ELEMENT r EMPTY><!ATTLIST r pct CDATA "100%">`
	out, err := ExpandParameterEntities(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseString(out, "r")
	if err != nil {
		t.Fatal(err)
	}
	if ad := d.Def("r").AttDef("pct"); ad == nil || ad.Default != "100%" {
		t.Fatalf("literal %% lost: %+v", ad)
	}
}

func TestInternalSubset(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!DOCTYPE note [
<!ELEMENT note (to, from)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT from (#PCDATA)>
]>
<note><to>Ada</to><from>Bob</from></note>`
	root, subset, ok := InternalSubset(doc)
	if !ok || root != "note" {
		t.Fatalf("InternalSubset: ok=%v root=%q", ok, root)
	}
	d, err := ParseWithEntities(subset, root)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "note" || d.Def("from") == nil {
		t.Fatalf("internal subset DTD wrong: %s", d)
	}
}

func TestInternalSubsetAbsent(t *testing.T) {
	if _, _, ok := InternalSubset(`<note/>`); ok {
		t.Fatal("no DOCTYPE reported as present")
	}
	// External-only DOCTYPE has no internal subset.
	root, _, ok := InternalSubset(`<!DOCTYPE html SYSTEM "x.dtd"><html/>`)
	if ok {
		t.Fatal("external DOCTYPE reported as internal subset")
	}
	if root != "html" {
		t.Fatalf("root = %q", root)
	}
}
