package dtd

import (
	"fmt"
	"strings"
)

// This file implements the DTD features real-world schemas (XHTML,
// DocBook) need beyond the benchmark grammars: parameter entities,
// conditional sections, and extraction of the internal subset from a
// DOCTYPE declaration.

// ExpandParameterEntities resolves <!ENTITY % name "replacement">
// declarations and %name; references in a DTD source, and evaluates
// <![INCLUDE[…]]> / <![IGNORE[…]]> conditional sections (whose keywords
// are themselves often parameter entities). The result contains no
// parameter declarations or references and can be handed to ParseString.
func ExpandParameterEntities(src string) (string, error) {
	ents := map[string]string{}
	var out strings.Builder
	// Iterate until no %refs remain; bound the rounds to catch cycles.
	for round := 0; ; round++ {
		if round > 100 {
			return "", fmt.Errorf("dtd: parameter entities do not terminate (cycle?)")
		}
		out.Reset()
		changed, err := expandOnce(src, ents, &out)
		if err != nil {
			return "", err
		}
		src = out.String()
		if !changed {
			return src, nil
		}
	}
}

// expandOnce performs one pass: records entity declarations (removing
// them from the output), substitutes known %name; references, and
// resolves conditional sections with literal keywords.
func expandOnce(src string, ents map[string]string, out *strings.Builder) (bool, error) {
	changed := false
	i := 0
	for i < len(src) {
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				out.WriteString(src[i:])
				return changed, nil
			}
			out.WriteString(src[i : i+4+end+3])
			i += 4 + end + 3
		case strings.HasPrefix(src[i:], "<!ENTITY"):
			rest := src[i+len("<!ENTITY"):]
			j := skipSpaceIdx(rest, 0)
			if j >= len(rest) || rest[j] != '%' {
				// A general entity: copy through (ParseString skips it).
				end := strings.IndexByte(src[i:], '>')
				if end < 0 {
					return changed, fmt.Errorf("dtd: unterminated <!ENTITY")
				}
				out.WriteString(src[i : i+end+1])
				i += end + 1
				continue
			}
			j = skipSpaceIdx(rest, j+1)
			k := j
			for k < len(rest) && isNameChar(rest[k]) {
				k++
			}
			if k == j {
				return changed, fmt.Errorf("dtd: bad parameter entity name")
			}
			name := rest[j:k]
			k = skipSpaceIdx(rest, k)
			if k >= len(rest) || (rest[k] != '"' && rest[k] != '\'') {
				return changed, fmt.Errorf("dtd: parameter entity %%%s: expected quoted replacement", name)
			}
			q := rest[k]
			endq := strings.IndexByte(rest[k+1:], q)
			if endq < 0 {
				return changed, fmt.Errorf("dtd: parameter entity %%%s: unterminated replacement", name)
			}
			value := rest[k+1 : k+1+endq]
			k += 1 + endq + 1
			k = skipSpaceIdx(rest, k)
			if k >= len(rest) || rest[k] != '>' {
				return changed, fmt.Errorf("dtd: parameter entity %%%s: expected >", name)
			}
			if _, dup := ents[name]; !dup {
				ents[name] = value // XML spec: first binding wins
			}
			i += len("<!ENTITY") + k + 1
			changed = true
		case strings.HasPrefix(src[i:], "<!["):
			// Conditional section: <![KEYWORD[ … ]]>. The keyword may have
			// been a %ref, resolved by an earlier round.
			j := skipSpaceIdx(src, i+3)
			k := j
			for k < len(src) && isNameChar(src[k]) {
				k++
			}
			keyword := src[j:k]
			k = skipSpaceIdx(src, k)
			if k >= len(src) || src[k] != '[' {
				if strings.HasPrefix(src[j:], "%") {
					// Unresolved keyword reference: emit as-is and let the
					// %-substitution below handle it next round.
					out.WriteByte(src[i])
					i++
					changed = true
					continue
				}
				return changed, fmt.Errorf("dtd: malformed conditional section")
			}
			body, next, err := conditionalBody(src, k+1)
			if err != nil {
				return changed, err
			}
			switch keyword {
			case "INCLUDE":
				out.WriteString(body)
			case "IGNORE":
				// dropped
			default:
				return changed, fmt.Errorf("dtd: conditional section keyword %q (expected INCLUDE or IGNORE)", keyword)
			}
			i = next
			changed = true
		case src[i] == '%':
			// Parameter reference %name; (only recognised with the
			// terminating semicolon — '%' also appears in ATTLIST text).
			k := i + 1
			for k < len(src) && isNameChar(src[k]) {
				k++
			}
			if k > i+1 && k < len(src) && src[k] == ';' {
				name := src[i+1 : k]
				val, ok := ents[name]
				if !ok {
					return changed, fmt.Errorf("dtd: undefined parameter entity %%%s;", name)
				}
				out.WriteString(" " + val + " ")
				i = k + 1
				changed = true
				continue
			}
			out.WriteByte(src[i])
			i++
		default:
			out.WriteByte(src[i])
			i++
		}
	}
	return changed, nil
}

// conditionalBody returns the contents of a conditional section starting
// right after "<![KEY[" and the index just past its closing "]]>",
// honouring nesting.
func conditionalBody(src string, start int) (string, int, error) {
	depth := 1
	i := start
	for i < len(src) {
		switch {
		case strings.HasPrefix(src[i:], "<!["):
			depth++
			i += 3
		case strings.HasPrefix(src[i:], "]]>"):
			depth--
			if depth == 0 {
				return src[start:i], i + 3, nil
			}
			i += 3
		default:
			i++
		}
	}
	return "", 0, fmt.Errorf("dtd: unterminated conditional section")
}

func skipSpaceIdx(s string, i int) int {
	for i < len(s) && isSpace(s[i]) {
		i++
	}
	return i
}

// InternalSubset extracts the root element name and the internal DTD
// subset from a document's <!DOCTYPE root [ … ]> declaration. It returns
// ok=false when the document carries no internal subset.
func InternalSubset(doc string) (rootTag, subset string, ok bool) {
	i := strings.Index(doc, "<!DOCTYPE")
	if i < 0 {
		return "", "", false
	}
	j := skipSpaceIdx(doc, i+len("<!DOCTYPE"))
	k := j
	for k < len(doc) && isNameChar(doc[k]) {
		k++
	}
	rootTag = doc[j:k]
	open := strings.IndexByte(doc[k:], '[')
	gt := strings.IndexByte(doc[k:], '>')
	if open < 0 || (gt >= 0 && gt < open) {
		return rootTag, "", false // external-only DOCTYPE
	}
	// Find the matching ']' of the internal subset (no nesting of '[' in
	// declarations except conditional sections, which are rare inside
	// internal subsets; handle them via conditionalBody's scanner).
	depth := 1
	p := k + open + 1
	for p < len(doc) && depth > 0 {
		switch doc[p] {
		case '[':
			depth++
		case ']':
			depth--
		}
		p++
	}
	if depth != 0 {
		return rootTag, "", false
	}
	return rootTag, doc[k+open+1 : p-1], true
}

// ParseWithEntities is ParseString preceded by parameter-entity expansion.
func ParseWithEntities(src, rootTag string) (*DTD, error) {
	expanded, err := ExpandParameterEntities(src)
	if err != nil {
		return nil, err
	}
	return ParseString(expanded, rootTag)
}
