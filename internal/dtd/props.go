package dtd

// This file implements the reachability relation ⇒E (Def. 2.5), the
// closure operations used by the type system's A_E function, and the
// Def. 4.3 grammar properties governing completeness.

// Step returns the one-step image {Y | ∃Z∈from. Z ⇒E Y}.
func (d *DTD) Step(from NameSet) NameSet {
	out := NameSet{}
	for z := range from {
		out.AddAll(d.Children(z))
	}
	return out
}

// ContentStep is Step restricted to tree children (elements and text):
// attribute names are not reachable on the XPath child/descendant axes.
func (d *DTD) ContentStep(from NameSet) NameSet {
	out := NameSet{}
	for z := range from {
		out.AddAll(d.ContentNames(z))
	}
	return out
}

// ContentDescendants is Descendants over ContentStep: the names reachable
// on the XPath descendant axis (no attribute names).
func (d *DTD) ContentDescendants(from NameSet) NameSet {
	out := d.ContentStep(from)
	frontier := out.Clone()
	for !frontier.Empty() {
		next := d.ContentStep(frontier)
		frontier = NameSet{}
		for n := range next {
			if !out.Has(n) {
				out.Add(n)
				frontier.Add(n)
			}
		}
	}
	return out
}

// AttNames returns the derived attribute names of the names in from.
func (d *DTD) AttNames(from NameSet) NameSet {
	out := NameSet{}
	for z := range from {
		def := d.Defs[z]
		if def == nil {
			continue
		}
		for i := range def.Atts {
			out.Add(def.Atts[i].Name)
		}
	}
	return out
}

// StepUp returns the one-step preimage {Z | ∃Y∈from. Z ⇒E Y}.
func (d *DTD) StepUp(from NameSet) NameSet {
	out := NameSet{}
	for y := range from {
		out.AddAll(d.Parents(y))
	}
	return out
}

// Descendants returns the image of from under ⇒E⁺ (strict descendants).
func (d *DTD) Descendants(from NameSet) NameSet {
	out := d.Step(from)
	frontier := out.Clone()
	for !frontier.Empty() {
		next := d.Step(frontier)
		frontier = NameSet{}
		for n := range next {
			if !out.Has(n) {
				out.Add(n)
				frontier.Add(n)
			}
		}
	}
	return out
}

// Ancestors returns the preimage of from under ⇒E⁺ (strict ancestors).
func (d *DTD) Ancestors(from NameSet) NameSet {
	if d.ancestorsOf != nil {
		out := NameSet{}
		for n := range from {
			out.AddAll(d.AncestorsOf(n))
		}
		return out
	}
	out := d.StepUp(from)
	frontier := out.Clone()
	for !frontier.Empty() {
		next := d.StepUp(frontier)
		frontier = NameSet{}
		for n := range next {
			if !out.Has(n) {
				out.Add(n)
				frontier.Add(n)
			}
		}
	}
	return out
}

// ReachableFromRoot returns ⇒E*-image of {Root}: every name that can occur
// in a valid document.
func (d *DTD) ReachableFromRoot() NameSet {
	out := NewNameSet(d.Root)
	out.AddAll(d.Descendants(NewNameSet(d.Root)))
	return out
}

// IsRecursive reports whether some name satisfies Y ⇒E⁺ Y (Def. 4.3(2)
// fails).
func (d *DTD) IsRecursive() bool {
	// Standard three-colour DFS over the name graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[Name]int, len(d.Defs))
	var visit func(Name) bool
	visit = func(n Name) bool {
		colour[n] = grey
		for c := range d.Children(n) {
			switch colour[c] {
			case grey:
				return true
			case white:
				if visit(c) {
					return true
				}
			}
		}
		colour[n] = black
		return false
	}
	for _, n := range d.order {
		if colour[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// IsStarGuarded reports Def. 4.3(1): for each edge the content model is a
// product r₁,…,rₙ and every rᵢ containing a union is of the form (r)* or
// (r)+.
func (d *DTD) IsStarGuarded() bool {
	for _, n := range d.order {
		def := d.Defs[n]
		if def.Text {
			continue
		}
		if !starGuarded(def.Content) {
			return false
		}
	}
	return true
}

func starGuarded(r Regex) bool {
	// View r as a product of factors (a lone factor is a 1-product).
	var factors []Regex
	if s, ok := r.(Seq); ok {
		factors = s.Items
	} else {
		factors = []Regex{r}
	}
	for _, f := range factors {
		if !containsAlt(f) {
			continue
		}
		switch f.(type) {
		case Star, Plus:
			// Guarded; anything goes inside.
		default:
			return false
		}
	}
	return true
}

// IsParentUnambiguous reports Def. 4.3(3): whenever cYZ is a chain from
// the root, no chain cYc′Z with c′ ≠ ε exists. Equivalently: for every
// root-reachable Y with Y ⇒E Z, Z is not reachable from Y through a
// non-empty intermediate chain.
func (d *DTD) IsParentUnambiguous() bool {
	reach := d.ReachableFromRoot()
	for y := range reach {
		direct := d.Children(y)
		if direct.Empty() {
			continue
		}
		// Names reachable from y in ≥ 2 steps.
		twoPlus := d.Descendants(direct)
		for z := range direct {
			if twoPlus.Has(z) {
				return false
			}
		}
	}
	return true
}
