package dtd

import "strings"

// Regex is a regular expression over grammar names, used as a content
// model r in edges X → a[r].
type Regex interface {
	// String renders the regex in DTD-ish syntax with names in place of
	// tags.
	String() string
	regexNode()
}

// Epsilon matches the empty sequence (EMPTY content).
type Epsilon struct{}

// Ref matches one occurrence of a name.
type Ref struct{ Name Name }

// Seq matches the concatenation of its items (a, b, c).
type Seq struct{ Items []Regex }

// Alt matches any one of its items (a | b | c).
type Alt struct{ Items []Regex }

// Star matches zero or more repetitions (r*).
type Star struct{ Inner Regex }

// Plus matches one or more repetitions (r+).
type Plus struct{ Inner Regex }

// Opt matches zero or one occurrence (r?).
type Opt struct{ Inner Regex }

func (Epsilon) regexNode() {}
func (Ref) regexNode()     {}
func (Seq) regexNode()     {}
func (Alt) regexNode()     {}
func (Star) regexNode()    {}
func (Plus) regexNode()    {}
func (Opt) regexNode()     {}

func (Epsilon) String() string { return "()" }
func (r Ref) String() string   { return string(r.Name) }

func (r Seq) String() string {
	parts := make([]string, len(r.Items))
	for i, it := range r.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (r Alt) String() string {
	parts := make([]string, len(r.Items))
	for i, it := range r.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

func (r Star) String() string { return r.Inner.String() + "*" }
func (r Plus) String() string { return r.Inner.String() + "+" }
func (r Opt) String() string  { return r.Inner.String() + "?" }

// addRegexNames accumulates Names(r) into out.
func addRegexNames(r Regex, out NameSet) {
	switch x := r.(type) {
	case Epsilon, nil:
	case Ref:
		out.Add(x.Name)
	case Seq:
		for _, it := range x.Items {
			addRegexNames(it, out)
		}
	case Alt:
		for _, it := range x.Items {
			addRegexNames(it, out)
		}
	case Star:
		addRegexNames(x.Inner, out)
	case Plus:
		addRegexNames(x.Inner, out)
	case Opt:
		addRegexNames(x.Inner, out)
	}
}

// RegexNames returns the set Names(r).
func RegexNames(r Regex) NameSet {
	out := NameSet{}
	addRegexNames(r, out)
	return out
}

// Nullable reports whether r matches the empty sequence.
func Nullable(r Regex) bool {
	switch x := r.(type) {
	case Epsilon, nil:
		return true
	case Ref:
		return false
	case Seq:
		for _, it := range x.Items {
			if !Nullable(it) {
				return false
			}
		}
		return true
	case Alt:
		for _, it := range x.Items {
			if Nullable(it) {
				return true
			}
		}
		return false
	case Star, Opt:
		return true
	case Plus:
		return Nullable(x.Inner)
	}
	return false
}

// containsAlt reports whether r contains a union node anywhere.
func containsAlt(r Regex) bool {
	switch x := r.(type) {
	case Alt:
		return true
	case Seq:
		for _, it := range x.Items {
			if containsAlt(it) {
				return true
			}
		}
	case Star:
		return containsAlt(x.Inner)
	case Plus:
		return containsAlt(x.Inner)
	case Opt:
		return containsAlt(x.Inner)
	}
	return false
}
