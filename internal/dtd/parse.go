package dtd

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// Parse reads DTD declarations from r and builds the local tree grammar.
// rootTag names the document root element; if empty, the first declared
// element is taken as root (the usual convention for standalone DTDs).
//
// Supported declarations: <!ELEMENT …> with EMPTY, ANY, mixed and children
// content; <!ATTLIST …>; comments. Parameter entities and conditional
// sections are not supported (none of the benchmark DTDs use them).
func Parse(r io.Reader, rootTag string) (*DTD, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dtd: %w", err)
	}
	return ParseString(string(src), rootTag)
}

// ParseString is Parse over a string.
func ParseString(src, rootTag string) (*DTD, error) {
	p := &parser{src: src}
	d := &DTD{Defs: map[Name]*Def{}, ByTag: map[string]Name{}}
	type pendingAtt struct {
		tag  string
		atts []AttDef
	}
	var pendingAtts []pendingAtt
	var anyTags []string // elements declared ANY, fixed up at the end
	for {
		p.skipMisc()
		if p.eof() {
			break
		}
		kw, err := p.declKeyword()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "ELEMENT":
			tag, content, isAny, mixed, err := p.elementDecl()
			if err != nil {
				return nil, err
			}
			name := Name(tag)
			def := &Def{Name: name, Tag: tag, Content: content}
			if err := d.add(def); err != nil {
				return nil, err
			}
			if isAny {
				anyTags = append(anyTags, tag)
			}
			if mixed {
				tn := TextName(name)
				if err := d.add(&Def{Name: tn, Text: true}); err != nil {
					return nil, err
				}
			}
		case "ATTLIST":
			tag, atts, err := p.attlistDecl()
			if err != nil {
				return nil, err
			}
			pendingAtts = append(pendingAtts, pendingAtt{tag, atts})
		case "ENTITY", "NOTATION":
			// Skipped: scan to the closing '>'.
			if err := p.skipDecl(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("dtd: unsupported declaration <!%s at offset %d", kw, p.pos)
		}
	}

	if len(d.order) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	if rootTag == "" {
		d.Root = d.order[0]
	} else {
		n, ok := d.ByTag[rootTag]
		if !ok {
			return nil, fmt.Errorf("dtd: root element %q not declared", rootTag)
		}
		d.Root = n
	}

	// Fix up ANY content: any sequence of declared elements and text.
	for _, tag := range anyTags {
		name := d.ByTag[tag]
		tn := TextName(name)
		if _, ok := d.Defs[tn]; !ok {
			if err := d.add(&Def{Name: tn, Text: true}); err != nil {
				return nil, err
			}
		}
		var alts []Regex
		alts = append(alts, Ref{tn})
		for _, n := range d.order {
			if def := d.Defs[n]; !def.Text {
				alts = append(alts, Ref{n})
			}
		}
		d.Defs[name].Content = Star{Alt{alts}}
	}

	// Attach attribute lists.
	for _, pa := range pendingAtts {
		n, ok := d.ByTag[pa.tag]
		if !ok {
			return nil, fmt.Errorf("dtd: <!ATTLIST %s> for undeclared element", pa.tag)
		}
		def := d.Defs[n]
		for _, a := range pa.atts {
			a.Name = AttrName(n, a.Attr)
			if def.AttDef(a.Attr) != nil {
				continue // XML spec: first declaration wins
			}
			def.Atts = append(def.Atts, a)
		}
	}

	// Check that every referenced name is declared.
	for _, n := range d.order {
		def := d.Defs[n]
		if def.Text {
			continue
		}
		for ref := range RegexNames(def.Content) {
			if _, ok := d.Defs[ref]; !ok {
				return nil, fmt.Errorf("dtd: element %s references undeclared element %s", n, ref)
			}
		}
	}
	d.finalize()
	return d, nil
}

// MustParseString is ParseString for known-good sources; it panics on error.
func MustParseString(src, rootTag string) *DTD {
	d, err := ParseString(src, rootTag)
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipWS() {
	for !p.eof() && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

// skipMisc skips whitespace and comments between declarations.
func (p *parser) skipMisc() {
	for {
		p.skipWS()
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		// Tolerate a <?xml …?> prolog or PIs inside a DTD file.
		if strings.HasPrefix(p.src[p.pos:], "<?") {
			end := strings.Index(p.src[p.pos+2:], "?>")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 2 + end + 2
			continue
		}
		return
	}
}

// declKeyword consumes "<!KEYWORD" and returns the keyword.
func (p *parser) declKeyword() (string, error) {
	if !strings.HasPrefix(p.src[p.pos:], "<!") {
		return "", fmt.Errorf("dtd: expected declaration at offset %d (found %q)", p.pos, snippet(p.src, p.pos))
	}
	p.pos += 2
	start := p.pos
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

// skipDecl scans past the next unquoted '>'.
func (p *parser) skipDecl() error {
	for !p.eof() {
		c := p.src[p.pos]
		switch c {
		case '"', '\'':
			q := c
			p.pos++
			for !p.eof() && p.src[p.pos] != q {
				p.pos++
			}
			if p.eof() {
				return fmt.Errorf("dtd: unterminated literal")
			}
			p.pos++
		case '>':
			p.pos++
			return nil
		default:
			p.pos++
		}
	}
	return fmt.Errorf("dtd: unterminated declaration")
}

func (p *parser) name() (string, error) {
	p.skipWS()
	start := p.pos
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("dtd: expected name at offset %d (found %q)", p.pos, snippet(p.src, p.pos))
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(c byte) error {
	p.skipWS()
	if p.eof() || p.src[p.pos] != c {
		return fmt.Errorf("dtd: expected %q at offset %d (found %q)", string(c), p.pos, snippet(p.src, p.pos))
	}
	p.pos++
	return nil
}

// elementDecl parses the remainder of an <!ELEMENT …> declaration. The
// returned regex is over element names; mixed reports whether a #PCDATA
// text name must be created for the element, in which case the parser has
// already inserted Ref(TextName) placeholders.
func (p *parser) elementDecl() (tag string, content Regex, isAny, mixed bool, err error) {
	tag, err = p.name()
	if err != nil {
		return "", nil, false, false, err
	}
	p.skipWS()
	switch {
	case strings.HasPrefix(p.src[p.pos:], "EMPTY"):
		p.pos += len("EMPTY")
		content = Epsilon{}
	case strings.HasPrefix(p.src[p.pos:], "ANY"):
		p.pos += len("ANY")
		content, isAny = Epsilon{}, true
	case p.peek() == '(':
		content, mixed, err = p.contentSpec(Name(tag))
		if err != nil {
			return "", nil, false, false, err
		}
	default:
		return "", nil, false, false, fmt.Errorf("dtd: bad content spec for %s at offset %d", tag, p.pos)
	}
	if err := p.expect('>'); err != nil {
		return "", nil, false, false, err
	}
	return tag, content, isAny, mixed, nil
}

// contentSpec parses mixed or children content, starting at '('.
func (p *parser) contentSpec(owner Name) (Regex, bool, error) {
	// Lookahead for mixed content: ( #PCDATA …
	save := p.pos
	if err := p.expect('('); err != nil {
		return nil, false, err
	}
	p.skipWS()
	if strings.HasPrefix(p.src[p.pos:], "#PCDATA") {
		p.pos += len("#PCDATA")
		alts := []Regex{Ref{TextName(owner)}}
		for {
			p.skipWS()
			if p.peek() == '|' {
				p.pos++
				n, err := p.name()
				if err != nil {
					return nil, false, err
				}
				alts = append(alts, Ref{Name(n)})
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, false, err
		}
		// The trailing '*' is mandatory when other elements are mixed in,
		// optional for pure (#PCDATA).
		if p.peek() == '*' {
			p.pos++
		}
		return Star{Alt{alts}}, true, nil
	}
	// Children content: back up and parse a cp.
	p.pos = save
	r, err := p.cp()
	if err != nil {
		return nil, false, err
	}
	return r, false, nil
}

// cp parses a content particle: (Name | choice | seq) ('?'|'*'|'+')?.
func (p *parser) cp() (Regex, error) {
	p.skipWS()
	var base Regex
	if p.peek() == '(' {
		p.pos++
		first, err := p.cp()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		switch p.peek() {
		case '|':
			items := []Regex{first}
			for p.peek() == '|' {
				p.pos++
				it, err := p.cp()
				if err != nil {
					return nil, err
				}
				items = append(items, it)
				p.skipWS()
			}
			base = Alt{items}
		case ',':
			items := []Regex{first}
			for p.peek() == ',' {
				p.pos++
				it, err := p.cp()
				if err != nil {
					return nil, err
				}
				items = append(items, it)
				p.skipWS()
			}
			base = Seq{items}
		default:
			base = first
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
	} else {
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		base = Ref{Name(n)}
	}
	switch p.peek() {
	case '?':
		p.pos++
		return Opt{base}, nil
	case '*':
		p.pos++
		return Star{base}, nil
	case '+':
		p.pos++
		return Plus{base}, nil
	}
	return base, nil
}

// attlistDecl parses the remainder of an <!ATTLIST …> declaration.
func (p *parser) attlistDecl() (string, []AttDef, error) {
	tag, err := p.name()
	if err != nil {
		return "", nil, err
	}
	var atts []AttDef
	for {
		p.skipWS()
		if p.peek() == '>' {
			p.pos++
			return tag, atts, nil
		}
		attr, err := p.name()
		if err != nil {
			return "", nil, err
		}
		a := AttDef{Attr: attr}
		p.skipWS()
		if p.peek() == '(' { // enumeration
			p.pos++
			a.Type = "ENUM"
			for {
				v, err := p.name()
				if err != nil {
					return "", nil, err
				}
				a.Enum = append(a.Enum, v)
				p.skipWS()
				if p.peek() == '|' {
					p.pos++
					continue
				}
				break
			}
			if err := p.expect(')'); err != nil {
				return "", nil, err
			}
		} else {
			t, err := p.name()
			if err != nil {
				return "", nil, err
			}
			a.Type = t
		}
		p.skipWS()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "#REQUIRED"):
			p.pos += len("#REQUIRED")
			a.Required = true
		case strings.HasPrefix(p.src[p.pos:], "#IMPLIED"):
			p.pos += len("#IMPLIED")
		case strings.HasPrefix(p.src[p.pos:], "#FIXED"):
			p.pos += len("#FIXED")
			v, err := p.literal()
			if err != nil {
				return "", nil, err
			}
			a.Fixed, a.Default, a.HasDefault = v, v, true
		default:
			v, err := p.literal()
			if err != nil {
				return "", nil, err
			}
			a.Default, a.HasDefault = v, true
		}
		atts = append(atts, a)
	}
}

func (p *parser) literal() (string, error) {
	p.skipWS()
	if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", fmt.Errorf("dtd: expected quoted literal at offset %d", p.pos)
	}
	q := p.src[p.pos]
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return "", fmt.Errorf("dtd: unterminated literal")
	}
	v := p.src[start:p.pos]
	p.pos++
	return v, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' || c == '#' ||
		c >= '0' && c <= '9' || unicode.IsLetter(rune(c))
}

func snippet(s string, pos int) string {
	end := pos + 20
	if end > len(s) {
		end = len(s)
	}
	if pos > len(s) {
		pos = len(s)
	}
	return s[pos:end]
}
