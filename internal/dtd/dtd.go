// Package dtd implements DTDs as local tree grammars (§2.2 of the paper):
// a distinguished root name X and a set of edges X_i → a_i[r_i] or
// X_i → String, where each r_i is a regular expression over names.
//
// The package parses real DTD syntax (<!ELEMENT …>, <!ATTLIST …>), builds
// the grammar, compiles content models to deterministic automata for
// validation, computes the reachability relation ⇒E and chains, and decides
// the Def. 4.3 properties (*-guarded, non-recursive, parent-unambiguous)
// that govern completeness of the analysis.
package dtd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Name is a non-terminal name of the grammar (X, Y, Z … in the paper).
// Element names coincide with their tag; the text name of element X is
// "X#text" (the §6 heuristic gives every String name a single occurrence);
// the attribute a of element X has the derived name "X@a".
type Name string

// IsText reports whether the name is a String name (Y → String).
func (n Name) IsText() bool { return strings.Contains(string(n), "#text") }

// IsAttr reports whether the name is a derived attribute name.
func (n Name) IsAttr() bool { return strings.Contains(string(n), "@") }

// TextName returns the String name of the text content of element name e.
func TextName(e Name) Name { return e + "#text" }

// AttrName returns the derived name of attribute attr of element name e.
func AttrName(e Name, attr string) Name { return e + "@" + Name(attr) }

// AttDef describes one attribute declared by <!ATTLIST>.
type AttDef struct {
	// Attr is the attribute name as written in the document.
	Attr string
	// Name is the derived grammar name ("elem@attr").
	Name Name
	// Type is the declared type (CDATA, ID, IDREF, NMTOKEN, enumeration …),
	// kept verbatim; validation only distinguishes enumerations.
	Type string
	// Enum holds the allowed values for enumerated types.
	Enum []string
	// Required is true for #REQUIRED attributes.
	Required bool
	// Fixed holds the #FIXED value, if any.
	Fixed string
	// Default holds the declared default value, if any.
	Default string
	// HasDefault reports whether Default is meaningful.
	HasDefault bool
}

// Def is one edge of the grammar.
type Def struct {
	// Name is the defined non-terminal.
	Name Name
	// Text is true for Y → String edges; Tag and Content are then unused.
	Text bool
	// Tag is the element tag a of X → a[r].
	Tag string
	// Content is the content model r, a regular expression over names.
	// For EMPTY content it is Epsilon; for ANY it is a star over all
	// element names (fixed up after parsing).
	Content Regex
	// Atts lists declared attributes in declaration order.
	Atts []AttDef

	// dfa is the compiled content-model automaton (built lazily).
	dfa *DFA
}

// AttDef returns the declaration for the named attribute, or nil.
func (d *Def) AttDef(attr string) *AttDef {
	for i := range d.Atts {
		if d.Atts[i].Attr == attr {
			return &d.Atts[i]
		}
	}
	return nil
}

// DTD is a local tree grammar (X, E).
type DTD struct {
	// Root is the distinguished root name X.
	Root Name
	// Defs maps each defined name to its edge.
	Defs map[Name]*Def
	// ByTag maps element tags to their defining name (condition 3 of local
	// tree grammars: tags determine names).
	ByTag map[string]Name
	// order preserves declaration order for deterministic output.
	order []Name

	// Relation caches, precomputed by finalize() once parsing is done (the
	// static analysis queries them heavily). They treat the grammar as
	// immutable from then on.
	childrenOf  map[Name]NameSet // ⇒E image incl. text and attribute names
	contentOf   map[Name]NameSet // content-model names only
	parentsOf   map[Name]NameSet // ⇒E preimage
	ancestorsOf map[Name]NameSet // ⇒E⁺ preimage

	// syms is the dense symbol table used by byte-level scanners,
	// built lazily once (the grammar is immutable after parsing).
	symOnce sync.Once
	syms    *Symbols
}

// Names returns all defined names DN(E) in declaration order (element
// names first as declared, with each element's text and attribute names
// immediately after it).
func (d *DTD) Names() []Name {
	out := make([]Name, len(d.order))
	copy(out, d.order)
	return out
}

// Def returns the edge for name n, or nil if n is not defined.
func (d *DTD) Def(n Name) *Def { return d.Defs[n] }

// ElementName returns the name defining the given element tag.
func (d *DTD) ElementName(tag string) (Name, bool) {
	n, ok := d.ByTag[tag]
	return n, ok
}

// add registers a definition, preserving order.
func (d *DTD) add(def *Def) error {
	if _, dup := d.Defs[def.Name]; dup {
		return fmt.Errorf("dtd: duplicate definition of %s", def.Name)
	}
	d.Defs[def.Name] = def
	d.order = append(d.order, def.Name)
	if !def.Text {
		if _, dup := d.ByTag[def.Tag]; dup {
			return fmt.Errorf("dtd: duplicate element declaration <!ELEMENT %s>", def.Tag)
		}
		d.ByTag[def.Tag] = def.Name
	}
	return nil
}

// finalize precomputes the relation caches. It must be called once after
// all definitions are added; the grammar is immutable afterwards.
func (d *DTD) finalize() {
	d.childrenOf = make(map[Name]NameSet, len(d.order))
	d.contentOf = make(map[Name]NameSet, len(d.order))
	d.parentsOf = make(map[Name]NameSet, len(d.order))
	for _, n := range d.order {
		def := d.Defs[n]
		content := NameSet{}
		children := NameSet{}
		if !def.Text {
			addRegexNames(def.Content, content)
			children = content.Clone()
			for i := range def.Atts {
				children.Add(def.Atts[i].Name)
			}
		}
		d.contentOf[n] = content
		d.childrenOf[n] = children
	}
	for _, n := range d.order {
		d.parentsOf[n] = NameSet{}
	}
	for _, z := range d.order {
		for c := range d.childrenOf[z] {
			if d.parentsOf[c] == nil {
				d.parentsOf[c] = NameSet{}
			}
			d.parentsOf[c].Add(z)
		}
	}
	// Ancestors per name via upward closure — over every name that has a
	// parent entry, which includes derived attribute names.
	names := make([]Name, 0, len(d.parentsOf))
	for n := range d.parentsOf {
		names = append(names, n)
	}
	d.ancestorsOf = make(map[Name]NameSet, len(names))
	for _, n := range names {
		out := d.parentsOf[n].Clone()
		frontier := out.Clone()
		for !frontier.Empty() {
			next := NameSet{}
			for f := range frontier {
				for p := range d.parentsOf[f] {
					if !out.Has(p) {
						out.Add(p)
						next.Add(p)
					}
				}
			}
			frontier = next
		}
		d.ancestorsOf[n] = out
	}
}

// Children returns the set of names Y with n ⇒E Y: the names in n's
// content model, its text name (if any), and its attribute names.
func (d *DTD) Children(n Name) NameSet {
	if d.childrenOf != nil {
		if s, ok := d.childrenOf[n]; ok {
			return s
		}
		return NameSet{}
	}
	out := NameSet{}
	def := d.Defs[n]
	if def == nil || def.Text {
		return out
	}
	addRegexNames(def.Content, out)
	for i := range def.Atts {
		out.Add(def.Atts[i].Name)
	}
	return out
}

// ContentNames returns only the names occurring in n's content model
// (children in the tree sense: elements and text, no attributes).
func (d *DTD) ContentNames(n Name) NameSet {
	if d.contentOf != nil {
		if s, ok := d.contentOf[n]; ok {
			return s
		}
		return NameSet{}
	}
	out := NameSet{}
	def := d.Defs[n]
	if def == nil || def.Text {
		return out
	}
	addRegexNames(def.Content, out)
	return out
}

// Parents returns the set of names Z with Z ⇒E n.
func (d *DTD) Parents(n Name) NameSet {
	if d.parentsOf != nil {
		if s, ok := d.parentsOf[n]; ok {
			return s
		}
		return NameSet{}
	}
	out := NameSet{}
	for _, z := range d.order {
		if d.Children(z).Has(n) {
			out.Add(z)
		}
	}
	return out
}

// AncestorsOf returns the cached ⇒E⁺ preimage of a single name.
func (d *DTD) AncestorsOf(n Name) NameSet {
	if d.ancestorsOf != nil {
		if s, ok := d.ancestorsOf[n]; ok {
			return s
		}
		return NameSet{}
	}
	return d.Ancestors(NewNameSet(n))
}

// String renders the grammar in the paper's edge notation, one edge per
// line, for debugging and golden tests.
func (d *DTD) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "root %s\n", d.Root)
	for _, n := range d.order {
		def := d.Defs[n]
		if def.Text {
			fmt.Fprintf(&sb, "%s -> String\n", n)
			continue
		}
		fmt.Fprintf(&sb, "%s -> %s[%s]\n", n, def.Tag, def.Content)
	}
	return sb.String()
}

// NameSet is a finite set of names. The zero value is not usable; use
// NewNameSet or a composite literal NameSet{}.
type NameSet map[Name]struct{}

// NewNameSet builds a set from the given names.
func NewNameSet(names ...Name) NameSet {
	s := make(NameSet, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Add inserts n.
func (s NameSet) Add(n Name) { s[n] = struct{}{} }

// Has reports membership.
func (s NameSet) Has(n Name) bool { _, ok := s[n]; return ok }

// Len returns the cardinality.
func (s NameSet) Len() int { return len(s) }

// Empty reports whether the set is empty.
func (s NameSet) Empty() bool { return len(s) == 0 }

// AddAll inserts every element of t and reports whether s grew.
func (s NameSet) AddAll(t NameSet) bool {
	grew := false
	for n := range t {
		if !s.Has(n) {
			s.Add(n)
			grew = true
		}
	}
	return grew
}

// Union returns a fresh set s ∪ t.
func (s NameSet) Union(t NameSet) NameSet {
	u := make(NameSet, len(s)+len(t))
	for n := range s {
		u.Add(n)
	}
	for n := range t {
		u.Add(n)
	}
	return u
}

// Intersect returns a fresh set s ∩ t.
func (s NameSet) Intersect(t NameSet) NameSet {
	u := NameSet{}
	for n := range s {
		if t.Has(n) {
			u.Add(n)
		}
	}
	return u
}

// Minus returns a fresh set s \ t.
func (s NameSet) Minus(t NameSet) NameSet {
	u := NameSet{}
	for n := range s {
		if !t.Has(n) {
			u.Add(n)
		}
	}
	return u
}

// Clone returns a fresh copy of s.
func (s NameSet) Clone() NameSet {
	u := make(NameSet, len(s))
	for n := range s {
		u.Add(n)
	}
	return u
}

// Equal reports set equality.
func (s NameSet) Equal(t NameSet) bool {
	if len(s) != len(t) {
		return false
	}
	for n := range s {
		if !t.Has(n) {
			return false
		}
	}
	return true
}

// Sorted returns the members in lexicographic order.
func (s NameSet) Sorted() []Name {
	out := make([]Name, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as {a, b, c} in sorted order.
func (s NameSet) String() string {
	names := s.Sorted()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
