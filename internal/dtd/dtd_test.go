package dtd

import (
	"strings"
	"testing"
)

const bookDTD = `
<!-- a small bibliography -->
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ATTLIST book isbn CDATA #REQUIRED
               lang (en|fr|it) "en">
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

func mustDTD(t *testing.T, src, root string) *DTD {
	t.Helper()
	d, err := ParseString(src, root)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return d
}

func TestParseBookDTD(t *testing.T) {
	d := mustDTD(t, bookDTD, "")
	if d.Root != "bib" {
		t.Fatalf("root = %s, want bib (first declared)", d.Root)
	}
	book := d.Def("book")
	if book == nil || book.Tag != "book" {
		t.Fatalf("missing book def: %+v", book)
	}
	if got := book.Content.String(); got != "(title, author+, year?)" {
		t.Fatalf("book content = %s", got)
	}
	// PCDATA elements got a text name.
	if td := d.Def(TextName("title")); td == nil || !td.Text {
		t.Fatalf("title text name missing: %+v", td)
	}
	// Attributes.
	isbn := book.AttDef("isbn")
	if isbn == nil || !isbn.Required || isbn.Type != "CDATA" {
		t.Fatalf("isbn attdef wrong: %+v", isbn)
	}
	lang := book.AttDef("lang")
	if lang == nil || lang.Type != "ENUM" || len(lang.Enum) != 3 || !lang.HasDefault || lang.Default != "en" {
		t.Fatalf("lang attdef wrong: %+v", lang)
	}
	if isbn.Name != AttrName("book", "isbn") {
		t.Fatalf("derived attr name = %s", isbn.Name)
	}
}

func TestParseExplicitRoot(t *testing.T) {
	d := mustDTD(t, bookDTD, "book")
	if d.Root != "book" {
		t.Fatalf("root = %s, want book", d.Root)
	}
	if _, err := ParseString(bookDTD, "nosuch"); err == nil {
		t.Fatal("undeclared root must be an error")
	}
}

func TestParseMixedContent(t *testing.T) {
	d := mustDTD(t, `<!ELEMENT text (#PCDATA | bold | keyword)*>
<!ELEMENT bold (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>`, "text")
	txt := d.Def("text")
	names := RegexNames(txt.Content)
	for _, want := range []Name{TextName("text"), "bold", "keyword"} {
		if !names.Has(want) {
			t.Fatalf("mixed content misses %s: %s", want, names)
		}
	}
	if _, ok := txt.Content.(Star); !ok {
		t.Fatalf("mixed content should be starred: %T", txt.Content)
	}
}

func TestParseEmptyAndAny(t *testing.T) {
	d := mustDTD(t, `<!ELEMENT r (e, w)>
<!ELEMENT e EMPTY>
<!ELEMENT w ANY>`, "r")
	if _, ok := d.Def("e").Content.(Epsilon); !ok {
		t.Fatalf("EMPTY content should be Epsilon: %T", d.Def("e").Content)
	}
	wNames := RegexNames(d.Def("w").Content)
	for _, want := range []Name{"r", "e", "w", TextName("w")} {
		if !wNames.Has(want) {
			t.Fatalf("ANY content misses %s: %s", want, wNames)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<!ELEMENT a (b)>`, // b undeclared
		`<!ELEMENT a (#PCDATA)><!ELEMENT a (#PCDATA)>`, // duplicate
		`<!ELEMENT a (b,>`,               // syntax
		`<!ATTLIST a x CDATA #REQUIRED>`, // ATTLIST for undeclared element
		``,                               // empty
	}
	for _, src := range cases {
		if _, err := ParseString(src, ""); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestParseSkipsEntityAndComments(t *testing.T) {
	d := mustDTD(t, `<!-- c --> <!ENTITY amp "&#38;"> <!ELEMENT a EMPTY>`, "")
	if d.Root != "a" {
		t.Fatalf("root = %s", d.Root)
	}
}

func TestReachability(t *testing.T) {
	d := mustDTD(t, bookDTD, "")
	kids := d.Children("book")
	for _, want := range []Name{"title", "author", "year", AttrName("book", "isbn"), AttrName("book", "lang")} {
		if !kids.Has(want) {
			t.Fatalf("Children(book) misses %s: %s", want, kids)
		}
	}
	if !d.Parents("author").Has("book") {
		t.Fatal("Parents(author) misses book")
	}
	desc := d.Descendants(NewNameSet("bib"))
	if !desc.Has(TextName("year")) {
		t.Fatalf("Descendants(bib) misses year text: %s", desc)
	}
	if desc.Has("bib") {
		t.Fatal("bib is not its own strict descendant in a non-recursive DTD")
	}
	anc := d.Ancestors(NewNameSet(TextName("author")))
	if !anc.Has("book") || !anc.Has("bib") || !anc.Has("author") {
		t.Fatalf("Ancestors wrong: %s", anc)
	}
}

func TestProperties(t *testing.T) {
	d := mustDTD(t, bookDTD, "")
	if d.IsRecursive() {
		t.Fatal("book DTD is not recursive")
	}
	if !d.IsStarGuarded() {
		t.Fatal("book DTD is *-guarded (no unions outside stars)")
	}
	if !d.IsParentUnambiguous() {
		t.Fatal("book DTD is parent-unambiguous")
	}

	rec := mustDTD(t, `<!ELEMENT a (a?, b)><!ELEMENT b EMPTY>`, "a")
	if !rec.IsRecursive() {
		t.Fatal("a -> a? is recursive")
	}

	// The paper's §4 counterexample: X → c[Y | Z] is not *-guarded.
	ng := mustDTD(t, `<!ELEMENT c (a | b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>`, "c")
	if ng.IsStarGuarded() {
		t.Fatal("(a | b) without a star guard must not be *-guarded")
	}
	g := mustDTD(t, `<!ELEMENT c (a | b)*><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>`, "c")
	if !g.IsStarGuarded() {
		t.Fatal("(a | b)* is *-guarded")
	}

	// The paper's §4.1 example: X → a[Y,Z], Y → b[Z], Z → c[] is
	// parent-ambiguous (Z is both a child and a grandchild of X).
	pa := mustDTD(t, `<!ELEMENT a (b, c)><!ELEMENT b (c)><!ELEMENT c EMPTY>`, "a")
	if pa.IsParentUnambiguous() {
		t.Fatal("a/(b,c) with b/(c) is parent-ambiguous")
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		r    Regex
		want bool
	}{
		{Epsilon{}, true},
		{Ref{"a"}, false},
		{Star{Ref{"a"}}, true},
		{Plus{Ref{"a"}}, false},
		{Plus{Star{Ref{"a"}}}, true},
		{Opt{Ref{"a"}}, true},
		{Seq{[]Regex{Star{Ref{"a"}}, Opt{Ref{"b"}}}}, true},
		{Seq{[]Regex{Star{Ref{"a"}}, Ref{"b"}}}, false},
		{Alt{[]Regex{Ref{"a"}, Epsilon{}}}, true},
		{Alt{[]Regex{Ref{"a"}, Ref{"b"}}}, false},
	}
	for _, c := range cases {
		if got := Nullable(c.r); got != c.want {
			t.Errorf("Nullable(%s) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestDFAMatching(t *testing.T) {
	// (title, author+, year?)
	r := Seq{[]Regex{Ref{"title"}, Plus{Ref{"author"}}, Opt{Ref{"year"}}}}
	a := CompileRegex(r)
	ok := [][]Name{
		{"title", "author"},
		{"title", "author", "author", "year"},
		{"title", "author", "year"},
	}
	bad := [][]Name{
		{},
		{"title"},
		{"author", "title"},
		{"title", "author", "year", "year"},
		{"title", "year"},
	}
	for _, seq := range ok {
		if !a.Matches(seq) {
			t.Errorf("DFA rejects valid %v", seq)
		}
	}
	for _, seq := range bad {
		if a.Matches(seq) {
			t.Errorf("DFA accepts invalid %v", seq)
		}
	}
}

func TestDFAStarAlt(t *testing.T) {
	// (#PCDATA | b | k)* style content.
	r := Star{Alt{[]Regex{Ref{"t"}, Ref{"b"}, Ref{"k"}}}}
	a := CompileRegex(r)
	if !a.Matches(nil) || !a.Matches([]Name{"t", "b", "t", "k", "k"}) {
		t.Fatal("star-alt DFA rejects valid sequences")
	}
	if a.Matches([]Name{"t", "x"}) {
		t.Fatal("star-alt DFA accepts foreign name")
	}
}

func TestNameSetOps(t *testing.T) {
	a := NewNameSet("x", "y")
	b := NewNameSet("y", "z")
	if got := a.Union(b); got.Len() != 3 {
		t.Fatalf("union = %s", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Has("y") {
		t.Fatalf("intersect = %s", got)
	}
	if got := a.Minus(b); got.Len() != 1 || !got.Has("x") {
		t.Fatalf("minus = %s", got)
	}
	if !a.Equal(NewNameSet("y", "x")) {
		t.Fatal("Equal should ignore order")
	}
	if a.Equal(b) {
		t.Fatal("distinct sets reported equal")
	}
	c := a.Clone()
	c.Add("w")
	if a.Has("w") {
		t.Fatal("Clone aliases underlying map")
	}
	if got := NewNameSet("b", "a").String(); got != "{a, b}" {
		t.Fatalf("String = %q", got)
	}
}

func TestNameHelpers(t *testing.T) {
	if !TextName("a").IsText() || Name("a").IsText() {
		t.Fatal("IsText misclassifies")
	}
	if !AttrName("a", "x").IsAttr() || Name("a").IsAttr() {
		t.Fatal("IsAttr misclassifies")
	}
}

func TestDTDString(t *testing.T) {
	d := mustDTD(t, `<!ELEMENT a (b*)><!ELEMENT b EMPTY>`, "a")
	s := d.String()
	if !strings.Contains(s, "root a") || !strings.Contains(s, "a -> a[") || !strings.Contains(s, "b -> b[()]") {
		t.Fatalf("String output unexpected:\n%s", s)
	}
}
