package dtd

import (
	"math/rand"
	"testing"
)

// TestDenseDFAMatchesMapDFA: the dense symbol-indexed tables must agree
// with the map-based automata on every transition a scanner can take —
// element symbols, the text pseudo-symbol, and acceptance — state by
// state, and on random walks.
func TestDenseDFAMatchesMapDFA(t *testing.T) {
	d, err := ParseString(`
<!ELEMENT s (a*, b?)>
<!ELEMENT a (c, d*)>
<!ELEMENT b (#PCDATA | c)*>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (a?, c?)>
<!ELEMENT e EMPTY>
<!ELEMENT f ANY>
`, "s")
	if err != nil {
		t.Fatal(err)
	}
	syms := d.Symbols()
	for i := 0; i < syms.Len(); i++ {
		info := syms.Info(int32(i))
		dfa := info.Def.Automaton()
		dd := info.Dense
		if dd == nil {
			t.Fatalf("%s: no dense automaton", info.Name)
		}
		nstates := len(dfa.accept)
		for st := 0; st < nstates; st++ {
			if got, want := dd.Accepting(int32(st)), dfa.Accepting(st); got != want {
				t.Errorf("%s state %d: dense accepting %v, map %v", info.Name, st, got, want)
			}
			for j := 0; j < syms.Len(); j++ {
				child := syms.Info(int32(j))
				got := dd.Next(int32(st), int32(j))
				want := dfa.Next(st, child.Name)
				if int(got) != want {
					t.Errorf("%s state %d on %s: dense %d, map %d", info.Name, st, child.Name, got, want)
				}
			}
			got := dd.NextText(int32(st))
			want := dfa.Next(st, TextName(info.Name))
			if int(got) != want {
				t.Errorf("%s state %d on text: dense %d, map %d", info.Name, st, got, want)
			}
		}
		if got, want := dd.Accepting(-1), dfa.Accepting(-1); got != want {
			t.Errorf("%s dead state: dense accepting %v, map %v", info.Name, got, want)
		}
		if dd.Next(-1, 0) != -1 || dd.NextText(-1) != -1 {
			t.Errorf("%s: dead state must be absorbing", info.Name)
		}
	}

	// Random walks: the two automata must track each other move for move.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		info := syms.Info(int32(rng.Intn(syms.Len())))
		dfa, dd := info.Def.Automaton(), info.Dense
		ms, ds := dfa.Start(), dd.Start()
		for step := 0; step < 12; step++ {
			if rng.Intn(4) == 0 {
				ms = dfa.Next(ms, TextName(info.Name))
				ds = dd.NextText(ds)
			} else {
				j := int32(rng.Intn(syms.Len()))
				ms = dfa.Next(ms, syms.Info(j).Name)
				ds = dd.Next(ds, j)
			}
			if (ms < 0) != (ds < 0) || (ms >= 0 && int32(ms) != ds) {
				t.Fatalf("%s walk diverged: map %d, dense %d", info.Name, ms, ds)
			}
			if dfa.Accepting(ms) != dd.Accepting(ds) {
				t.Fatalf("%s walk acceptance diverged at map %d / dense %d", info.Name, ms, ds)
			}
			if ms < 0 {
				break
			}
		}
	}
}
