package dtd

import "strings"

// Symbols assigns every element name of the grammar a dense integer
// index, so byte-level scanners can resolve tags and answer projector
// membership with array indexing instead of string conversions and map
// probes on every token. The table is built once per DTD and cached;
// the grammar is immutable after parsing, so this is safe to share.
type Symbols struct {
	byTag map[string]int32
	infos []SymInfo
}

// SymInfo is the per-element data a scanner needs on the hot path.
type SymInfo struct {
	Name Name
	Def  *Def
	Tag  string
	// Dense is the element's content-model automaton recompiled over
	// symbol IDs (see DenseDFA); validating scanners walk it instead of
	// the map-based DFA.
	Dense *DenseDFA
}

// Symbols returns the cached symbol table for the grammar, including
// the dense content-model automata (compiled here, once per DTD, so
// every prune shares them).
func (d *DTD) Symbols() *Symbols {
	d.symOnce.Do(func() {
		s := &Symbols{byTag: make(map[string]int32, len(d.ByTag))}
		for _, n := range d.order {
			def := d.Defs[n]
			if def.Text {
				continue
			}
			s.byTag[def.Tag] = int32(len(s.infos))
			s.infos = append(s.infos, SymInfo{Name: n, Def: def, Tag: def.Tag})
		}
		s.compileDense(d)
		d.syms = s
	})
	return d.syms
}

// Len returns the number of element symbols.
func (s *Symbols) Len() int { return len(s.infos) }

// Info returns the per-element data for a symbol.
func (s *Symbols) Info(sym int32) *SymInfo { return &s.infos[sym] }

// Lookup resolves an element tag to its symbol. The tag is passed as
// bytes; the conversion in the map probe does not allocate.
func (s *Symbols) Lookup(tag []byte) (int32, bool) {
	sym, ok := s.byTag[string(tag)]
	return sym, ok
}

// Projection bits.
const (
	// KeepElem: the element name is in π.
	KeepElem = 1 << iota
	// KeepText: the element's text name is in π.
	KeepText
	// RawCopy: every name reachable from the element (its full content
	// closure, including text and attribute names) is in π, so a subtree
	// rooted here projects to itself and a pruner may copy its bytes
	// through without per-name projector decisions.
	RawCopy
)

// AttrProj is the compiled projector decision for one declared attribute.
type AttrProj struct {
	// Attr is the attribute name as written in documents.
	Attr string
	// Keep is true when the derived name elem@attr is in π.
	Keep bool
	// Def is the declaration, for validating pruners.
	Def *AttDef
}

// Projection is a type projector π compiled against a symbol table: a
// dense flag array indexed by element symbol plus per-element attribute
// decisions. Compiling once per prune moves every set-membership test
// off the token loop.
type Projection struct {
	Syms  *Symbols
	flags []uint8
	attrs [][]AttrProj
	// extra holds π entries naming attributes that the DTD does not
	// declare on that element (possible when a caller hand-builds π).
	// Almost always nil.
	extra []map[string]bool
}

// CompileProjection compiles π against the grammar's symbol table.
func (d *DTD) CompileProjection(pi NameSet) *Projection {
	syms := d.Symbols()
	p := &Projection{
		Syms:  syms,
		flags: make([]uint8, len(syms.infos)),
		attrs: make([][]AttrProj, len(syms.infos)),
	}
	for i := range syms.infos {
		info := &syms.infos[i]
		var f uint8
		if pi.Has(info.Name) {
			f |= KeepElem
		}
		if pi.Has(TextName(info.Name)) {
			f |= KeepText
		}
		p.flags[i] = f
		atts := info.Def.Atts
		if len(atts) > 0 {
			ap := make([]AttrProj, len(atts))
			for j := range atts {
				ap[j] = AttrProj{Attr: atts[j].Attr, Keep: pi.Has(atts[j].Name), Def: &atts[j]}
			}
			p.attrs[i] = ap
		}
	}
	// π entries for attributes the DTD never declared still keep matching
	// document attributes (the decoder-based pruner behaves this way), so
	// they need a dynamic side table.
	for n := range pi {
		if !n.IsAttr() {
			continue
		}
		s := string(n)
		at := strings.IndexByte(s, '@')
		sym, ok := d.Symbols().byTag[elemTagOf(d, Name(s[:at]))]
		if !ok {
			continue
		}
		attr := s[at+1:]
		declared := false
		for _, ap := range p.attrs[sym] {
			if ap.Attr == attr {
				declared = true
				break
			}
		}
		if !declared {
			if p.extra == nil {
				p.extra = make([]map[string]bool, len(syms.infos))
			}
			if p.extra[sym] == nil {
				p.extra[sym] = make(map[string]bool)
			}
			p.extra[sym][attr] = true
		}
	}
	p.compileRawCopy(d, pi)
	return p
}

// elemTagOf maps an element name to its tag ("" if not an element).
func elemTagOf(d *DTD, n Name) string {
	if def := d.Defs[n]; def != nil && !def.Text {
		return def.Tag
	}
	return ""
}

// compileRawCopy marks the symbols whose entire reachable closure is in
// π: iterate to a fixpoint, demoting any kept element that can reach a
// discarded name. Runs in O(edges · depth); grammars are small.
func (p *Projection) compileRawCopy(d *DTD, pi NameSet) {
	n := len(p.flags)
	closed := make([]bool, n)
	for i := range closed {
		closed[i] = p.flags[i]&KeepElem != 0 && p.extra == nil
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !closed[i] {
				continue
			}
			info := &p.Syms.infos[i]
			ok := true
			for c := range d.Children(info.Name) {
				if c.IsAttr() || c.IsText() {
					if !pi.Has(c) {
						ok = false
						break
					}
					continue
				}
				cdef := d.Defs[c]
				if cdef == nil || cdef.Text {
					if !pi.Has(c) {
						ok = false
						break
					}
					continue
				}
				csym, found := p.Syms.byTag[cdef.Tag]
				if !found || !closed[csym] {
					ok = false
					break
				}
			}
			if !ok {
				closed[i] = false
				changed = true
			}
		}
	}
	for i, c := range closed {
		if c {
			p.flags[i] |= RawCopy
		}
	}
}

// Flags returns the projector bits for a symbol.
func (p *Projection) Flags(sym int32) uint8 { return p.flags[sym] }

// Attrs returns the compiled attribute decisions for a symbol, in
// declaration order.
func (p *Projection) Attrs(sym int32) []AttrProj { return p.attrs[sym] }

// KeepExtraAttr reports whether π keeps an attribute that the DTD does
// not declare on this element. The byte-slice map probe does not
// allocate.
func (p *Projection) KeepExtraAttr(sym int32, attr []byte) bool {
	if p.extra == nil || p.extra[sym] == nil {
		return false
	}
	return p.extra[sym][string(attr)]
}
