package dtd

import "fmt"

// MaxMultiProjections bounds how many projectors one fused decision
// table can hold: the shared-scan pruner threads the projector set
// through its element stack as a uint64 live-set bitmask, so one fused
// pass covers at most 64 projectors (callers shard larger sets).
const MaxMultiProjections = 64

// MultiAttr is the fused per-attribute decision for one declared
// attribute: which projectors keep it, plus the declaration for
// validating pruners. The declaration (name, Def) is projector-
// independent — it comes from the grammar.
type MultiAttr struct {
	// Attr is the attribute name as written in documents.
	Attr string
	// Keep has bit j set when projector j keeps elem@attr.
	Keep uint64
	// Def is the declaration, for validating pruners.
	Def *AttDef
}

// MultiProjection is a set of type projectors compiled into one fused
// per-symbol decision table: for every element symbol, bitmasks over
// the projector set answer keep-element, keep-text and per-attribute
// decisions with one array load each. A shared-scan pruner threads
// these masks through its element stack as a live set, so a subtree
// dead for every projector is skipped once and a symbol's fate for all
// N projectors costs the same lookup as for one.
type MultiProjection struct {
	// Syms is the symbol table all member projections were compiled
	// against.
	Syms *Symbols

	n        int
	keepElem []uint64
	keepText []uint64
	attrs    [][]MultiAttr
	// extra fuses the members' undeclared-attribute side tables
	// (π entries naming attributes the DTD does not declare on that
	// element). Almost always nil.
	extra []map[string]uint64
}

// CombineProjections fuses up to MaxMultiProjections compiled
// projections into one decision table. Every member must have been
// compiled against the same DTD (the same symbol table); projector
// order is preserved — bit j of every mask answers for ps[j].
func CombineProjections(ps []*Projection) (*MultiProjection, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("dtd: no projections to combine")
	}
	if len(ps) > MaxMultiProjections {
		return nil, fmt.Errorf("dtd: %d projections exceed the fused limit of %d", len(ps), MaxMultiProjections)
	}
	syms := ps[0].Syms
	for j, p := range ps {
		if p.Syms != syms {
			return nil, fmt.Errorf("dtd: projection %d compiled against a different symbol table", j)
		}
	}
	n := syms.Len()
	mp := &MultiProjection{
		Syms:     syms,
		n:        len(ps),
		keepElem: make([]uint64, n),
		keepText: make([]uint64, n),
		attrs:    make([][]MultiAttr, n),
	}
	for sym := 0; sym < n; sym++ {
		for j, p := range ps {
			bit := uint64(1) << uint(j)
			f := p.flags[sym]
			if f&KeepElem != 0 {
				mp.keepElem[sym] |= bit
			}
			if f&KeepText != 0 {
				mp.keepText[sym] |= bit
			}
		}
		// Declared-attribute lists come from the grammar, so every member
		// has the same attributes in the same order; only Keep differs.
		decl := ps[0].attrs[sym]
		if len(decl) > 0 {
			ma := make([]MultiAttr, len(decl))
			for a := range decl {
				ma[a] = MultiAttr{Attr: decl[a].Attr, Def: decl[a].Def}
				for j, p := range ps {
					if p.attrs[sym][a].Keep {
						ma[a].Keep |= uint64(1) << uint(j)
					}
				}
			}
			mp.attrs[sym] = ma
		}
		for j, p := range ps {
			if p.extra == nil || p.extra[sym] == nil {
				continue
			}
			if mp.extra == nil {
				mp.extra = make([]map[string]uint64, n)
			}
			if mp.extra[sym] == nil {
				mp.extra[sym] = make(map[string]uint64)
			}
			for attr, keep := range p.extra[sym] {
				if keep {
					mp.extra[sym][attr] |= uint64(1) << uint(j)
				}
			}
		}
	}
	return mp, nil
}

// N returns the number of fused projectors.
func (mp *MultiProjection) N() int { return mp.n }

// All is the mask with one bit per fused projector.
func (mp *MultiProjection) All() uint64 {
	if mp.n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(mp.n)) - 1
}

// KeepElem returns the mask of projectors keeping the element.
func (mp *MultiProjection) KeepElem(sym int32) uint64 { return mp.keepElem[sym] }

// KeepText returns the mask of projectors keeping the element's text.
func (mp *MultiProjection) KeepText(sym int32) uint64 { return mp.keepText[sym] }

// Attrs returns the fused attribute decisions for a symbol, in
// declaration order.
func (mp *MultiProjection) Attrs(sym int32) []MultiAttr { return mp.attrs[sym] }

// KeepExtraAttr returns the mask of projectors keeping an attribute the
// DTD does not declare on this element. The byte-slice map probe does
// not allocate.
func (mp *MultiProjection) KeepExtraAttr(sym int32, attr []byte) uint64 {
	if mp.extra == nil || mp.extra[sym] == nil {
		return 0
	}
	return mp.extra[sym][string(attr)]
}
