package dtd

// DenseDFA is a content-model automaton recompiled against a DTD's
// symbol table: a states × (symbols+1) []int32 transition array indexed
// by the per-DTD element symbol IDs, with one trailing column for the
// element's text pseudo-symbol and -1 as the dead state. Byte-level
// scanners take a child transition with two array loads — no string
// hashing, no map probe — which is what lets validation be fused with
// pruning at essentially no overhead (§2.3, §6 of the paper).
//
// Dense tables are built once per DTD (inside Symbols) from the
// map-based DFAs and shared across every prune of every document; the
// grammar is immutable after parsing, so this is safe.
type DenseDFA struct {
	// trans[state*width+sym] = next state, or -1. Column width-1 is the
	// text pseudo-symbol (the element's own "#text" name).
	trans []int32
	// accept[state] reports whether the state is accepting.
	accept []bool
	width  int32
}

// Start returns the start state.
func (a *DenseDFA) Start() int32 { return 0 }

// Next returns the successor state on an element symbol, or -1.
func (a *DenseDFA) Next(state, sym int32) int32 {
	if state < 0 {
		return -1
	}
	return a.trans[state*a.width+sym]
}

// NextText returns the successor state on the element's text
// pseudo-symbol, or -1.
func (a *DenseDFA) NextText(state int32) int32 {
	if state < 0 {
		return -1
	}
	return a.trans[state*a.width+a.width-1]
}

// Accepting reports whether state is accepting.
func (a *DenseDFA) Accepting(state int32) bool {
	return state >= 0 && a.accept[state]
}

// compileDense recompiles every element's content-model DFA into a
// dense table over the symbol IDs. Names in a content model that do not
// resolve to an element symbol of this DTD (or to the element's own
// text name) can never be matched by a scanned document, so their
// transitions are dropped — the dense walk and the map walk then agree
// on every sequence a scanner can feed them.
func (s *Symbols) compileDense(d *DTD) {
	width := int32(len(s.infos) + 1)
	for i := range s.infos {
		info := &s.infos[i]
		dfa := info.Def.Automaton()
		nstates := len(dfa.trans)
		dd := &DenseDFA{
			trans:  make([]int32, int32(nstates)*width),
			accept: append([]bool(nil), dfa.accept...),
			width:  width,
		}
		for j := range dd.trans {
			dd.trans[j] = -1
		}
		textName := TextName(info.Name)
		for st := 0; st < nstates; st++ {
			row := int32(st) * width
			for n, next := range dfa.trans[st] {
				var col int32
				switch {
				case n == textName:
					col = width - 1
				default:
					def := d.Defs[n]
					if def == nil || def.Text {
						continue
					}
					c, ok := s.byTag[def.Tag]
					if !ok {
						continue
					}
					col = c
				}
				dd.trans[row+col] = int32(next)
			}
		}
		info.Dense = dd
	}
}
