package pathproj

import (
	"testing"

	"xmlproj/internal/tree"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
	"xmlproj/internal/xquery"
)

const doc = `<site><regions><item><name>gold ring</name><desc><kw>gold</kw></desc></item><item><name>mug</name><desc/></item></regions><people><person><name>Ada</name></person></people></site>`

func mustDoc(t *testing.T, s string) *tree.Document {
	t.Helper()
	d, err := tree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func lowerQuery(t *testing.T, src string) []Path {
	t.Helper()
	ps, err := xpathl.FromQuery(xpath.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	bps, _ := FromXPathL(ps)
	return bps
}

func TestPruneSimplePath(t *testing.T) {
	d := mustDoc(t, doc)
	out, stats := Prune(d, lowerQuery(t, "/site/regions/item/name"))
	got := out.XML()
	// Non-materialised paths keep result nodes without their subtrees,
	// exactly like a non-materialised type projector.
	want := `<site><regions><item><name/></item><item><name/></item></regions></site>`
	if got != want {
		t.Fatalf("pruned = %s, want %s", got, want)
	}
	// The baseline visits the whole document.
	var total int64
	d.Walk(func(*tree.Node) bool { total++; return true })
	if stats.Visited < total {
		t.Fatalf("baseline visited %d of %d nodes; it must traverse everything", stats.Visited, total)
	}
}

func TestPruneDescendant(t *testing.T) {
	d := mustDoc(t, doc)
	out, _ := Prune(d, lowerQuery(t, "//kw"))
	want := `<site><regions><item><desc><kw/></desc></item></regions></site>`
	if got := out.XML(); got != want {
		t.Fatalf("pruned = %s, want %s", got, want)
	}
}

func TestPruneKeepSubtree(t *testing.T) {
	d := mustDoc(t, doc)
	// Materialised paths end with dos::node() after extraction.
	q := xquery.MustParse("/site/people/person")
	bps, _ := FromXPathL(xquery.Extract(q))
	out, _ := Prune(d, bps)
	want := `<site><people><person><name>Ada</name></person></people></site>`
	if got := out.XML(); got != want {
		t.Fatalf("pruned = %s, want %s", got, want)
	}
}

func TestPredicateDegenerates(t *testing.T) {
	// The baseline cannot use predicates: item[kw] keeps item subtrees
	// whole.
	d := mustDoc(t, doc)
	bps, exact := FromXPathL(mustApprox(t, `//item[desc/kw]/name`))
	if exact {
		t.Fatal("predicate lowering must be reported inexact")
	}
	out, _ := Prune(d, bps)
	// Both items fully kept (predicate ignored, subtree kept).
	if len(out.Root.Children[0].Children) != 2 {
		t.Fatalf("pruned = %s", out.XML())
	}
	if out.Root.Children[0].Children[1].Children[0].Tag != "name" {
		t.Fatalf("item subtree not kept whole: %s", out.XML())
	}
}

func TestBackwardAxisDegenerates(t *testing.T) {
	bps, exact := FromXPathL(mustApprox(t, `//kw/ancestor::item`))
	if exact {
		t.Fatal("backward lowering must be reported inexact")
	}
	d := mustDoc(t, doc)
	out, _ := Prune(d, bps)
	// The ancestor step degrades to keep-subtree at the kw match point —
	// everything on the kw spine survives whole.
	if out.Root == nil {
		t.Fatal("root lost")
	}
}

func mustApprox(t *testing.T, src string) []*xpathl.Path {
	t.Helper()
	ps, err := xpathl.FromQuery(xpath.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestPruneNoMatchEmpties(t *testing.T) {
	d := mustDoc(t, doc)
	out, _ := Prune(d, lowerQuery(t, "/site/nosuch"))
	if out.Root != nil {
		t.Fatalf("pruned = %s, want empty", out.XML())
	}
}

func TestDosVariantExpansion(t *testing.T) {
	bps, exact := FromXPathL(mustApprox(t, "//item"))
	if !exact {
		t.Fatal("//item should lower exactly")
	}
	// dos::node()/child::item → self + descendant variants.
	if len(bps) != 2 {
		t.Fatalf("%d baseline paths, want 2 variants", len(bps))
	}
}

// Baseline soundness: query results are preserved on baseline-pruned
// documents too (it is a sound pruner, just less precise and slower).
func TestBaselineSoundOnResults(t *testing.T) {
	d := mustDoc(t, doc)
	for _, src := range []string{
		"/site/regions/item/name", "//kw", "//person/name", "//item[desc/kw]/name",
	} {
		q := xpath.MustParse(src)
		orig, err := xpath.NewEvaluator(d).Select(q)
		if err != nil {
			t.Fatal(err)
		}
		bps, _ := FromXPathL(mustApprox(t, src))
		pruned, _ := Prune(d, bps)
		if pruned.Root == nil {
			if len(orig) != 0 {
				t.Fatalf("%s: baseline pruned everything but query matches", src)
			}
			continue
		}
		after, err := xpath.NewEvaluator(pruned).Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != len(orig) {
			t.Fatalf("%s: %d results before, %d after baseline pruning\n%s", src, len(orig), len(after), pruned.XML())
		}
	}
}
