// Package pathproj implements the comparison baseline of the paper's
// §1.1/§5: Marian & Siméon's path-based projection (VLDB '03). Projection
// paths are extracted from the query, but — unlike type projectors — the
// pruner knows nothing about the schema:
//
//   - predicates cannot be used: a path step carrying a predicate keeps
//     the whole subtree from that step (the degeneration the paper
//     describes for descendant::node()[cond]);
//   - backward and sibling axes are unsupported: the path is truncated at
//     the offending step and the subtree is kept;
//   - every // step forces the pruner to visit all descendants of a node
//     to decide whether it contains a useful descendant, so pruning cost
//     is a full traversal of the document regardless of selectivity.
//
// The package exists so the benchmark harness can reproduce the paper's
// precision and pruning-overhead comparisons.
package pathproj

import (
	"xmlproj/internal/tree"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// StepKind is how a projection-path step consumes nodes.
type StepKind uint8

const (
	// Child matches a child of the current node.
	Child StepKind = iota
	// Descendant matches any proper descendant (from //).
	Descendant
	// Self re-tests the current node.
	Self
)

// Step is one step of a projection path.
type Step struct {
	Kind StepKind
	Test xpath.NodeTest
}

// Path is one projection path. KeepSubtree marks "#"-terminated paths
// whose full result subtrees are needed.
type Path struct {
	Steps       []Step
	KeepSubtree bool
}

// FromXPathL lowers XPathℓ data-need paths to projection paths,
// degrading wherever the baseline cannot express the construct. A
// descendant-or-self step is expanded into its self and descendant
// variants (two baseline paths). The second result reports whether the
// lowering was exact (no degradation).
func FromXPathL(paths []*xpathl.Path) ([]Path, bool) {
	var out []Path
	exact := true
	for _, p := range paths {
		bps, ex := lower(p)
		exact = exact && ex
		out = append(out, bps...)
	}
	return out, exact
}

func lower(p *xpathl.Path) ([]Path, bool) {
	variants := []Path{{}}
	exact := true
	appendAll := func(steps ...Step) {
		for i := range variants {
			if variants[i].KeepSubtree {
				continue
			}
			variants[i].Steps = append(append([]Step{}, variants[i].Steps...), steps...)
		}
	}
	keepAll := func() {
		for i := range variants {
			variants[i].KeepSubtree = true
		}
	}
	for i, s := range p.Steps {
		if s.Cond != nil {
			// Predicates are not usable: keep the subtree from here (the
			// step itself, when expressible, still narrows the match
			// point).
			exact = false
			if bs, ok := lowerStep(s.SStep); ok {
				appendAll(bs...)
			}
			keepAll()
			return variants, exact
		}
		if i == len(p.Steps)-1 && s.Axis == xpath.DescendantOrSelf && s.Test.Kind == xpath.TestNode {
			// Trailing descendant-or-self::node() is the materialisation
			// marker: whole result subtrees are needed ("#" in [14]).
			keepAll()
			continue
		}
		if s.Axis == xpath.DescendantOrSelf {
			// Split into self and descendant variants.
			var next []Path
			for _, v := range variants {
				selfVar := v
				selfVar.Steps = append(append([]Step{}, v.Steps...), Step{Kind: Self, Test: s.Test})
				descVar := v
				descVar.Steps = append(append([]Step{}, v.Steps...), Step{Kind: Descendant, Test: s.Test})
				next = append(next, selfVar, descVar)
			}
			variants = next
			continue
		}
		bs, ok := lowerStep(s.SStep)
		if !ok {
			// Backward/sibling/attribute step: not expressible, keep
			// everything from here.
			keepAll()
			return variants, false
		}
		appendAll(bs...)
	}
	return variants, exact
}

func lowerStep(s xpathl.SStep) ([]Step, bool) {
	switch s.Axis {
	case xpath.Child:
		return []Step{{Kind: Child, Test: s.Test}}, true
	case xpath.Descendant:
		return []Step{{Kind: Descendant, Test: s.Test}}, true
	case xpath.Self:
		if s.Test.Kind == xpath.TestNode {
			return nil, true
		}
		return []Step{{Kind: Self, Test: s.Test}}, true
	default:
		// parent, ancestor(-or-self), attribute: not expressible.
		return nil, false
	}
}

// Stats reports the work a baseline prune did.
type Stats struct {
	// Visited counts nodes examined: the baseline must traverse the whole
	// document (it cannot skip subtrees under //).
	Visited int64
	// Kept counts nodes retained.
	Kept int64
}

// Prune projects doc against the paths: a node survives when it lies on a
// root-to-match prefix, is a match, is below a KeepSubtree match, or has
// a surviving descendant. The traversal is complete — this is the
// overhead the paper contrasts with the one-pass type-driven pruner.
func Prune(doc *tree.Document, paths []Path) (*tree.Document, Stats) {
	var stats Stats
	if doc.Root == nil {
		return &tree.Document{}, stats
	}
	// Initial states: every path at position 0, applied to the root via
	// its Self prefix.
	var rootStates []state
	for pi := range paths {
		if s, alive := advanceSelf(&paths[pi], state{path: pi, idx: 0}, doc.Root); alive {
			rootStates = append(rootStates, s)
		}
	}
	root, keep := pruneNode(doc.Root, nil, paths, rootStates, &stats)
	if !keep {
		return &tree.Document{}, stats
	}
	return &tree.Document{Root: root}, stats
}

type state struct {
	path int
	idx  int
}

// advanceSelf applies consecutive Self steps of the path to node n; the
// Self kind also models descendant-or-self (stay OR descend), which is
// handled by keeping the state alive in child transitions.
func advanceSelf(p *Path, s state, n *tree.Node) (state, bool) {
	for s.idx < len(p.Steps) && p.Steps[s.idx].Kind == Self {
		if !matchTest(p.Steps[s.idx].Test, n) {
			return s, false
		}
		s.idx++
	}
	return s, true
}

func matchTest(t xpath.NodeTest, n *tree.Node) bool {
	switch t.Kind {
	case xpath.TestNode:
		return true
	case xpath.TestText:
		return n.Kind == tree.Text
	case xpath.TestStar:
		return n.Kind == tree.Element
	case xpath.TestName:
		return n.Kind == tree.Element && n.Tag == t.Name
	}
	return false
}

// pruneNode walks the full tree, threading NFA states downwards and the
// keep decision upwards.
func pruneNode(n *tree.Node, parent *tree.Node, paths []Path, states []state, stats *Stats) (*tree.Node, bool) {
	stats.Visited++
	matched := false
	subtree := false
	for _, s := range states {
		if s.idx >= len(paths[s.path].Steps) {
			matched = true
			if paths[s.path].KeepSubtree {
				subtree = true
			}
		}
	}
	if subtree {
		// Whole subtree kept verbatim (still counts as visited: the
		// baseline copies it out node by node).
		cp := copySubtree(n, parent, stats)
		return cp, true
	}

	m := &tree.Node{ID: n.ID, Kind: n.Kind, Tag: n.Tag, Data: n.Data, Parent: parent}
	m.Attrs = append(m.Attrs, n.Attrs...)
	anyChild := false
	for _, c := range n.Children {
		var next []state
		for _, s := range states {
			p := &paths[s.path]
			if s.idx >= len(p.Steps) {
				continue
			}
			st := p.Steps[s.idx]
			switch st.Kind {
			case Child:
				if matchTest(st.Test, c) {
					if ns, alive := advanceSelf(p, state{s.path, s.idx + 1}, c); alive {
						next = append(next, ns)
					}
				}
			case Descendant:
				// Stay (deeper descendants may match) …
				next = append(next, s)
				// … and advance on a match.
				if matchTest(st.Test, c) {
					if ns, alive := advanceSelf(p, state{s.path, s.idx + 1}, c); alive {
						next = append(next, ns)
					}
				}
			}
		}
		// Completed states propagate to children only via KeepSubtree,
		// handled above.
		cc, keep := pruneNode(c, m, paths, next, stats)
		if keep {
			cc.Index = len(m.Children)
			m.Children = append(m.Children, cc)
			anyChild = true
		}
	}
	if matched || anyChild {
		stats.Kept++
		return m, true
	}
	return nil, false
}

func copySubtree(n *tree.Node, parent *tree.Node, stats *Stats) *tree.Node {
	stats.Visited++
	stats.Kept++
	m := &tree.Node{ID: n.ID, Kind: n.Kind, Tag: n.Tag, Data: n.Data, Parent: parent}
	m.Attrs = append(m.Attrs, n.Attrs...)
	for _, c := range n.Children {
		cc := copySubtree(c, m, stats)
		cc.Index = len(m.Children)
		m.Children = append(m.Children, cc)
	}
	return m
}
