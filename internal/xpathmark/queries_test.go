package xpathmark

import (
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/prune"
	"xmlproj/internal/xmark"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

func TestAllQueriesParse(t *testing.T) {
	if len(Queries) != 23 {
		t.Fatalf("%d queries, want 23", len(Queries))
	}
	for _, q := range Queries {
		if _, err := xpath.Parse(q.Source); err != nil {
			t.Errorf("%s does not parse: %v", q.ID, err)
		}
	}
}

func TestAllAxesCovered(t *testing.T) {
	covered := map[xpath.Axis]bool{}
	var mark func(e xpath.Expr)
	var markPath func(p xpath.Path)
	markPath = func(p xpath.Path) {
		for _, st := range p.Steps {
			covered[st.Axis] = true
			for _, pr := range st.Preds {
				mark(pr)
			}
		}
	}
	mark = func(e xpath.Expr) {
		switch t := e.(type) {
		case xpath.Binary:
			mark(t.L)
			mark(t.R)
		case xpath.Neg:
			mark(t.E)
		case xpath.Call:
			for _, a := range t.Args {
				mark(a)
			}
		case xpath.PathExpr:
			markPath(t.Path)
		}
	}
	for _, q := range Queries {
		mark(xpath.MustParse(q.Source))
	}
	for ax := xpath.Child; ax <= xpath.Attribute; ax++ {
		if !covered[ax] {
			t.Errorf("axis %s not exercised by any query", ax)
		}
	}
}

func TestAllQueriesRunAndSound(t *testing.T) {
	d := xmark.DTD()
	doc := xmark.NewGenerator(0.002, 5).Document()
	for _, q := range Queries {
		ast := xpath.MustParse(q.Source)
		ev := xpath.NewEvaluator(doc)
		orig, err := ev.Eval(ast)
		if err != nil {
			t.Fatalf("%s fails on original: %v", q.ID, err)
		}
		paths, err := xpathl.FromQuery(ast)
		if err != nil {
			t.Fatalf("%s: approximate: %v", q.ID, err)
		}
		pr, err := core.InferMaterialized(d, paths)
		if err != nil {
			t.Fatalf("%s: infer: %v", q.ID, err)
		}
		pruned := prune.Tree(d, doc, pr.Names)
		if pruned.Root == nil {
			t.Fatalf("%s: projector dropped the root", q.ID)
		}
		after, err := xpath.NewEvaluator(pruned).Eval(ast)
		if err != nil {
			t.Fatalf("%s fails on pruned: %v", q.ID, err)
		}
		ons := orig.(xpath.NodeSet)
		pns := after.(xpath.NodeSet)
		if len(ons) != len(pns) {
			t.Errorf("%s: %d results on original, %d on pruned (π = %s)", q.ID, len(ons), len(pns), pr)
			continue
		}
		for i := range ons {
			if ons[i].N.ID != pns[i].N.ID {
				t.Errorf("%s: result %d differs", q.ID, i)
				break
			}
			if ons[i].StringValue() != pns[i].StringValue() {
				t.Errorf("%s: result %d string-value differs (materialised projector)", q.ID, i)
				break
			}
		}
	}
}

func TestSelectivityShape(t *testing.T) {
	// Static shape of Table 1: the sibling/backward queries QP09/QP11
	// prune hard, while QP13 (following::item) keeps nearly everything.
	d := xmark.DTD()
	ratio := func(id string) float64 {
		q := ByID(id)
		paths, err := xpathl.FromQuery(xpath.MustParse(q.Source))
		if err != nil {
			t.Fatal(err)
		}
		pr, err := core.Infer(d, paths)
		if err != nil {
			t.Fatal(err)
		}
		return pr.KeepRatio()
	}
	if r09, r13 := ratio("QP09"), ratio("QP13"); r09 >= r13 {
		t.Errorf("QP09 (%.2f) should be more selective than QP13 (%.2f)", r09, r13)
	}
	if r13 := ratio("QP13"); r13 < 0.8 {
		t.Errorf("QP13 keep ratio = %.2f, want nearly everything", r13)
	}
	if r01 := ratio("QP01"); r01 > 0.4 {
		t.Errorf("QP01 keep ratio = %.2f, want a selective projector", r01)
	}
}

func TestByID(t *testing.T) {
	if q := ByID("QP11"); q == nil || q.ID != "QP11" {
		t.Fatal("ByID(QP11)")
	}
	if ByID("QP99") != nil {
		t.Fatal("ByID(QP99) should be nil")
	}
}
