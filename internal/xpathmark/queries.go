// Package xpathmark provides the XPathMark-style query set QP01–QP23
// over XMark documents [Franceschet, XSym '05]. The set is interesting
// for the paper's evaluation (§6) because it exercises every XPath axis —
// including the backward and sibling axes that path-based pruners cannot
// handle — plus nested predicates, boolean connectives and functions.
//
// QP01–QP08 reconstruct the published A-set; the remainder follow the
// B/C-set pattern (axes and functions), with QP09 and QP11 being the
// sibling/backward-axis queries the paper's §4.3 calls out, and QP13 the
// deliberately unselective query for which (per Table 1) nearly the whole
// document must be kept.
package xpathmark

// Query is one benchmark query (pure XPath 1.0).
type Query struct {
	ID     string
	Source string
}

// Queries lists QP01–QP23.
var Queries = []Query{
	{"QP01", `/site/closed_auctions/closed_auction/annotation/description/text/keyword`},
	{"QP02", `//closed_auction//keyword`},
	{"QP03", `/site/closed_auctions/closed_auction//keyword`},
	{"QP04", `/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date`},
	{"QP05", `/site/closed_auctions/closed_auction[descendant::keyword]/date`},
	{"QP06", `/site/people/person[profile/gender and profile/age]/name`},
	{"QP07", `/site/people/person[phone or homepage]/name`},
	{"QP08", `/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name`},
	{"QP09", `/site/regions/*/item[parent::namerica or parent::samerica]/name`},
	{"QP10", `//keyword/ancestor::listitem/text/keyword`},
	{"QP11", `/site/open_auctions/open_auction/bidder[following-sibling::bidder]`},
	{"QP12", `/site/open_auctions/open_auction/bidder[preceding-sibling::bidder]`},
	{"QP13", `/site//node()`},
	{"QP14", `/site/regions/*/item[following::item]/name`},
	{"QP15", `//person[profile/@income]/name`},
	{"QP16", `/site/open_auctions/open_auction/bidder[1]/increase`},
	{"QP17", `/site/open_auctions/open_auction/bidder[last()]/increase`},
	{"QP18", `//person[address/country = "United States"]/name`},
	{"QP19", `//keyword/ancestor-or-self::node()/self::text`},
	{"QP20", `//open_auction[count(bidder) > 3]/@id`},
	{"QP21", `//item[contains(description, "gold")]/name`},
	{"QP22", `//mail[preceding::mail]/from/text()`},
	{"QP23", `/site/people/person/watches/watch/@open_auction`},
}

// ByID returns the query with the given ID, or nil.
func ByID(id string) *Query {
	for i := range Queries {
		if Queries[i].ID == id {
			return &Queries[i]
		}
	}
	return nil
}
