package validate

import (
	"strings"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/tree"
)

const bibDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ATTLIST book isbn CDATA #REQUIRED
               lang (en|fr|it) "en">
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const validDoc = `<bib>
  <book isbn="1"><title>Commedia</title><author>Dante</author><year>1313</year></book>
  <book isbn="2" lang="it"><title>Vita Nova</title><author>Dante</author><author>Alighieri</author></book>
</bib>`

func setup(t *testing.T) (*dtd.DTD, *tree.Document) {
	t.Helper()
	d, err := dtd.ParseString(bibDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tree.ParseString(validDoc)
	if err != nil {
		t.Fatal(err)
	}
	return d, doc
}

func TestValidDocument(t *testing.T) {
	d, doc := setup(t)
	it, err := Document(d, doc)
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if it.NameOf(doc.Root) != "bib" {
		t.Fatalf("NameOf(root) = %s", it.NameOf(doc.Root))
	}
	book := doc.Root.Children[0]
	if it.NameOf(book) != "book" {
		t.Fatalf("NameOf(book) = %s", it.NameOf(book))
	}
	titleText := book.Children[0].Children[0]
	if titleText.Kind != tree.Text {
		t.Fatal("expected text node")
	}
	if it.NameOf(titleText) != dtd.TextName("title") {
		t.Fatalf("NameOf(title text) = %s", it.NameOf(titleText))
	}
}

func TestInvalidDocuments(t *testing.T) {
	d, _ := setup(t)
	cases := []struct {
		name, doc, wantMsg string
	}{
		{"wrong root", `<book isbn="1"><title>t</title><author>a</author></book>`, "root element"},
		{"undeclared element", `<bib><zine/></bib>`, "not declared"},
		{"missing title", `<bib><book isbn="1"><author>a</author></book></bib>`, "content model"},
		{"missing author", `<bib><book isbn="1"><title>t</title></book></bib>`, "content model"},
		{"order violated", `<bib><book isbn="1"><author>a</author><title>t</title></book></bib>`, "content model"},
		{"double year", `<bib><book isbn="1"><title>t</title><author>a</author><year>1</year><year>2</year></book></bib>`, "content model"},
		{"missing required attr", `<bib><book><title>t</title><author>a</author></book></bib>`, "required attribute"},
		{"undeclared attr", `<bib><book isbn="1" zzz="no"><title>t</title><author>a</author></book></bib>`, "undeclared attribute"},
		{"enum violated", `<bib><book isbn="1" lang="de"><title>t</title><author>a</author></book></bib>`, "enumeration"},
		{"text where forbidden", `<bib>stray</bib>`, "content model"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc, err := tree.ParseString(c.doc)
			if err != nil {
				t.Fatalf("test doc does not parse: %v", err)
			}
			_, err = Document(d, doc)
			if err == nil {
				t.Fatalf("invalid document accepted")
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, c.wantMsg)
			}
		})
	}
}

func TestFixedAttribute(t *testing.T) {
	d, err := dtd.ParseString(`<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1">`, "a")
	if err != nil {
		t.Fatal(err)
	}
	good, _ := tree.ParseString(`<a v="1"/>`)
	if _, err := Document(d, good); err != nil {
		t.Fatalf("fixed value rejected: %v", err)
	}
	bad, _ := tree.ParseString(`<a v="2"/>`)
	if _, err := Document(d, bad); err == nil {
		t.Fatal("wrong fixed value accepted")
	}
}

func TestMixedContentValidation(t *testing.T) {
	d, err := dtd.ParseString(`<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>`, "p")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := tree.ParseString(`<p>one <em>two</em> three</p>`)
	it, err := Document(d, doc)
	if err != nil {
		t.Fatalf("mixed content rejected: %v", err)
	}
	if it.NameOf(doc.Root.Children[0]) != dtd.TextName("p") {
		t.Fatalf("text under p should map to p's text name")
	}
	if it.NameOf(doc.Root.Children[1].Children[0]) != dtd.TextName("em") {
		t.Fatalf("text under em should map to em's text name")
	}
}

func TestRecursiveDTDValidation(t *testing.T) {
	d, err := dtd.ParseString(`<!ELEMENT part (name, part*)><!ELEMENT name (#PCDATA)>`, "part")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := tree.ParseString(`<part><name>top</name><part><name>sub</name></part></part>`)
	if _, err := Document(d, doc); err != nil {
		t.Fatalf("recursive structure rejected: %v", err)
	}
}

func TestEmptyDocument(t *testing.T) {
	d, _ := dtd.ParseString(`<!ELEMENT a EMPTY>`, "a")
	if _, err := Document(d, &tree.Document{}); err == nil {
		t.Fatal("nil root accepted")
	}
}

func TestApplyDefaults(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT r (e*)>
<!ELEMENT e EMPTY>
<!ATTLIST e lang (en|fr) "en" fix CDATA #FIXED "1" opt CDATA #IMPLIED>
`, "r")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := tree.ParseString(`<r><e/><e lang="fr"/></r>`)
	added := ApplyDefaults(d, doc)
	if added != 3 { // lang+fix on first, fix on second
		t.Fatalf("added = %d, want 3", added)
	}
	e1, e2 := doc.Root.Children[0], doc.Root.Children[1]
	if v, _ := e1.Attr("lang"); v != "en" {
		t.Fatalf("default lang not applied: %q", v)
	}
	if v, _ := e2.Attr("lang"); v != "fr" {
		t.Fatalf("explicit lang overwritten: %q", v)
	}
	if v, _ := e1.Attr("fix"); v != "1" {
		t.Fatalf("fixed value not applied: %q", v)
	}
	if _, present := e1.Attr("opt"); present {
		t.Fatal("#IMPLIED attribute must not be defaulted")
	}
	// Idempotent.
	if again := ApplyDefaults(d, doc); again != 0 {
		t.Fatalf("second pass added %d", again)
	}
}
