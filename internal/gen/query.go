package gen

import (
	"math/rand"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xpath"
)

// QueryOptions bounds random query generation.
type QueryOptions struct {
	// MaxSteps bounds the number of location steps. Default 4.
	MaxSteps int
	// MaxPreds bounds predicates per query. Default 2.
	MaxPreds int
	// AllAxes enables sibling/preceding/following axes in addition to the
	// XPathℓ ones.
	AllAxes bool
}

func (o QueryOptions) withDefaults() QueryOptions {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4
	}
	if o.MaxPreds < 0 {
		o.MaxPreds = 0
	}
	if o.MaxPreds == 0 {
		o.MaxPreds = 2
	}
	return o
}

// QueryGen draws random XPath queries whose name tests come from a DTD,
// so that a useful fraction of them select something.
type QueryGen struct {
	rng  *rand.Rand
	tags []string
	opts QueryOptions
}

// NewQueryGen returns a deterministic query generator.
func NewQueryGen(d *dtd.DTD, seed int64, opts QueryOptions) *QueryGen {
	var tags []string
	for _, n := range d.Names() {
		if def := d.Def(n); !def.Text {
			tags = append(tags, def.Tag)
		}
	}
	return &QueryGen{rng: rand.New(rand.NewSource(seed)), tags: tags, opts: opts.withDefaults()}
}

var xplAxes = []xpath.Axis{
	xpath.Child, xpath.Child, xpath.Child, // bias towards child
	xpath.Descendant, xpath.DescendantOrSelf,
	xpath.Self, xpath.Parent, xpath.Ancestor, xpath.AncestorOrSelf,
}

var extraAxes = []xpath.Axis{
	xpath.FollowingSibling, xpath.PrecedingSibling, xpath.Following, xpath.Preceding,
}

// Query draws one random query.
func (q *QueryGen) Query() xpath.Expr {
	n := 1 + q.rng.Intn(q.opts.MaxSteps)
	path := xpath.Path{Absolute: q.rng.Intn(2) == 0}
	preds := q.rng.Intn(q.opts.MaxPreds + 1)
	for i := 0; i < n; i++ {
		st := xpath.Step{Axis: q.axis(), Test: q.test()}
		if preds > 0 && q.rng.Intn(n) == 0 {
			st.Preds = append(st.Preds, q.predicate(0))
			preds--
		}
		path.Steps = append(path.Steps, st)
	}
	return xpath.PathExpr{Path: path}
}

func (q *QueryGen) axis() xpath.Axis {
	if q.opts.AllAxes && q.rng.Intn(4) == 0 {
		return extraAxes[q.rng.Intn(len(extraAxes))]
	}
	return xplAxes[q.rng.Intn(len(xplAxes))]
}

func (q *QueryGen) test() xpath.NodeTest {
	switch q.rng.Intn(6) {
	case 0:
		return xpath.NodeTestNode
	case 1:
		return xpath.TextTest
	case 2:
		return xpath.NodeTest{Kind: xpath.TestStar}
	default:
		return xpath.NameTest(q.tags[q.rng.Intn(len(q.tags))])
	}
}

// FLWRSource draws a random query in the XQuery FLWR core as source
// text, built from absolute in-paths and variable-rooted body paths.
func (q *QueryGen) FLWRSource() string {
	absPath := func() string {
		steps := 1 + q.rng.Intn(3)
		out := ""
		for i := 0; i < steps; i++ {
			sep := "/"
			if q.rng.Intn(4) == 0 {
				sep = "//"
			}
			out += sep + q.tags[q.rng.Intn(len(q.tags))]
		}
		return out
	}
	relPath := func(v string) string {
		steps := 1 + q.rng.Intn(2)
		out := "$" + v
		for i := 0; i < steps; i++ {
			out += "/" + q.tags[q.rng.Intn(len(q.tags))]
		}
		if q.rng.Intn(3) == 0 {
			out += "/text()"
		}
		return out
	}
	switch q.rng.Intn(6) {
	case 0:
		return "for $x in " + absPath() + " return " + relPath("x")
	case 1:
		return "for $x in " + absPath() + " where " + relPath("x") + " return " + relPath("x")
	case 2:
		return "for $x in " + absPath() + ` where ` + relPath("x") + ` = "alpha" return <out>{ ` + relPath("x") + ` }</out>`
	case 3:
		return "let $s := " + absPath() + " return count($s)"
	case 4:
		return "for $x in " + absPath() + " return (for $y in " + relPath("x") + " return $y)"
	default:
		return "count(for $x in " + absPath() + " where " + relPath("x") + " return $x)"
	}
}

// predicate draws a random predicate expression; depth bounds nesting.
func (q *QueryGen) predicate(depth int) xpath.Expr {
	relPath := func() xpath.Expr {
		steps := 1 + q.rng.Intn(2)
		p := xpath.Path{}
		for i := 0; i < steps; i++ {
			p.Steps = append(p.Steps, xpath.Step{Axis: q.axis(), Test: q.test()})
		}
		return xpath.PathExpr{Path: p}
	}
	switch q.rng.Intn(8) {
	case 0: // existence
		return relPath()
	case 1: // value comparison against a word
		return xpath.Binary{Op: xpath.OpEq, L: relPath(), R: xpath.Literal{S: words[q.rng.Intn(len(words))]}}
	case 2: // numeric comparison
		return xpath.Binary{Op: xpath.OpGt, L: xpath.Call{Name: "count", Args: []xpath.Expr{relPath()}}, R: xpath.Number{F: float64(q.rng.Intn(3))}}
	case 3: // negation
		return xpath.Call{Name: "not", Args: []xpath.Expr{relPath()}}
	case 4: // position
		return xpath.Number{F: float64(1 + q.rng.Intn(3))}
	case 5: // contains
		return xpath.Call{Name: "contains", Args: []xpath.Expr{relPath(), xpath.Literal{S: words[q.rng.Intn(len(words))]}}}
	case 6: // disjunction
		if depth < 1 {
			return xpath.Binary{Op: xpath.OpOr, L: q.predicate(depth + 1), R: q.predicate(depth + 1)}
		}
		return relPath()
	default: // conjunction
		if depth < 1 {
			return xpath.Binary{Op: xpath.OpAnd, L: q.predicate(depth + 1), R: q.predicate(depth + 1)}
		}
		return relPath()
	}
}
