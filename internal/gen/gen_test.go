package gen

import (
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
	"xmlproj/internal/xpath"
)

var testDTDs = map[string]string{
	"flat": `
<!ELEMENT r (a*, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>
`,
	"recursive": `
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
`,
	"mutual-recursion": `
<!ELEMENT a (b?)>
<!ELEMENT b (a?)>
`,
	"choice": `
<!ELEMENT r (x | y)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y EMPTY>
`,
	"plus-required": `
<!ELEMENT r (a+)>
<!ELEMENT a (b+)>
<!ELEMENT b (#PCDATA)>
`,
	"mixed": `
<!ELEMENT r (#PCDATA | e)*>
<!ELEMENT e (#PCDATA)>
`,
	"attrs": `
<!ELEMENT r (e*)>
<!ELEMENT e EMPTY>
<!ATTLIST e id ID #REQUIRED ref IDREF #IMPLIED kind (p|q) "p" fix CDATA #FIXED "1">
`,
	"deep-required": `
<!ELEMENT r (s)>
<!ELEMENT s (t)>
<!ELEMENT t (u)>
<!ELEMENT u (#PCDATA)>
`,
}

// TestGeneratedDocumentsAlwaysValid is the generator's core contract:
// every generated document validates against its DTD, across DTD shapes
// and seeds.
func TestGeneratedDocumentsAlwaysValid(t *testing.T) {
	for name, src := range testDTDs {
		t.Run(name, func(t *testing.T) {
			d, err := dtd.ParseString(src, "")
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 25; seed++ {
				doc := New(d, seed, Options{MaxDepth: 5, MaxRepeat: 3}).Document()
				if _, err := validate.Document(d, doc); err != nil {
					t.Fatalf("seed %d: invalid document: %v\n%s", seed, err, doc.XML())
				}
			}
		})
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	d, _ := dtd.ParseString(testDTDs["recursive"], "")
	a := New(d, 5, Options{}).Document().XML()
	b := New(d, 5, Options{}).Document().XML()
	if a != b {
		t.Fatal("same seed, different documents")
	}
}

func TestGeneratorBoundsDepth(t *testing.T) {
	d, _ := dtd.ParseString(testDTDs["recursive"], "")
	for seed := int64(0); seed < 10; seed++ {
		doc := New(d, seed, Options{MaxDepth: 3, MaxRepeat: 2}).Document()
		maxDepth := 0
		var walk func(n *tree.Node, depth int)
		walk = func(n *tree.Node, depth int) {
			if n.Kind == tree.Element && depth > maxDepth {
				maxDepth = depth
			}
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		walk(doc.Root, 0)
		// Beyond MaxDepth the generator takes minimal expansions; for this
		// DTD (part* is skippable) nesting must stop right there, plus the
		// mandatory name child.
		if maxDepth > 3+1 {
			t.Fatalf("seed %d: depth %d exceeds bound", seed, maxDepth)
		}
	}
}

func TestQueryGeneratorProducesValidQueries(t *testing.T) {
	d, _ := dtd.ParseString(testDTDs["plus-required"], "")
	qg := NewQueryGen(d, 3, QueryOptions{MaxSteps: 5, MaxPreds: 3, AllAxes: true})
	for i := 0; i < 200; i++ {
		q := qg.Query()
		src := q.String()
		if _, err := xpath.Parse(src); err != nil {
			t.Fatalf("generated query %q does not parse: %v", src, err)
		}
	}
}

func TestQueryGeneratorDeterministic(t *testing.T) {
	d, _ := dtd.ParseString(testDTDs["flat"], "")
	a := NewQueryGen(d, 9, QueryOptions{}).Query().String()
	b := NewQueryGen(d, 9, QueryOptions{}).Query().String()
	if a != b {
		t.Fatal("same seed, different queries")
	}
}
