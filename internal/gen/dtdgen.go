package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"xmlproj/internal/dtd"
)

// DTDOptions bounds random grammar generation.
type DTDOptions struct {
	// Elements is the number of element names. Default 8.
	Elements int
	// AllowRecursion permits back-edges in content models.
	AllowRecursion bool
	// AttrChance is the per-element probability (in percent) of declaring
	// attributes. Default 30.
	AttrChance int
}

func (o DTDOptions) withDefaults() DTDOptions {
	if o.Elements <= 0 {
		o.Elements = 8
	}
	if o.AttrChance == 0 {
		o.AttrChance = 30
	}
	return o
}

// RandomDTD generates a random local tree grammar in which every element
// is reachable from the root and every element can close (finite minimal
// expansion), so the document generator always terminates on it.
//
// Without AllowRecursion, content models only reference strictly later
// elements (a DAG), guaranteeing non-recursiveness; with it, back-edges
// are wrapped in ? or * so instances stay finite.
func RandomDTD(seed int64, opts DTDOptions) *dtd.DTD {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	n := opts.Elements
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("e%d", i)
	}

	var sb strings.Builder
	for i, name := range names {
		switch {
		case i == n-1 || rng.Intn(4) == 0:
			// Leaves: text or empty.
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&sb, "<!ELEMENT %s EMPTY>\n", name)
			} else {
				fmt.Fprintf(&sb, "<!ELEMENT %s (#PCDATA)>\n", name)
			}
		default:
			fmt.Fprintf(&sb, "<!ELEMENT %s (%s)>\n", name, randomContent(rng, i, n, opts.AllowRecursion))
		}
		if rng.Intn(100) < opts.AttrChance {
			req := "#IMPLIED"
			if rng.Intn(2) == 0 {
				req = "#REQUIRED"
			}
			fmt.Fprintf(&sb, "<!ATTLIST %s k%d CDATA %s>\n", name, rng.Intn(3), req)
		}
	}
	d, err := dtd.ParseString(sb.String(), "e0")
	if err != nil {
		panic(fmt.Sprintf("gen: RandomDTD produced an invalid grammar: %v\n%s", err, sb.String()))
	}
	return d
}

// randomContent builds a content model for element i. Forward references
// (i+1 … n-1) keep the grammar grounded; optional back-references add
// recursion when allowed.
func randomContent(rng *rand.Rand, i, n int, recursion bool) string {
	forward := func() string { return fmt.Sprintf("e%d", i+1+rng.Intn(n-i-1)) }
	var parts []string
	// Guarantee groundedness: the first particle is a forward reference.
	parts = append(parts, forward()+suffix(rng))
	for extra := rng.Intn(3); extra > 0; extra-- {
		switch {
		case recursion && rng.Intn(3) == 0:
			// A back-edge (possibly self), always skippable.
			opt := "?"
			if rng.Intn(2) == 0 {
				opt = "*"
			}
			parts = append(parts, fmt.Sprintf("e%d%s", rng.Intn(i+1), opt))
		case rng.Intn(3) == 0:
			// A *-guarded union of two forward references.
			parts = append(parts, fmt.Sprintf("(%s | %s)*", forward(), forward()))
		default:
			parts = append(parts, forward()+suffix(rng))
		}
	}
	return strings.Join(parts, ", ")
}

func suffix(rng *rand.Rand) string {
	return []string{"", "?", "*", "+"}[rng.Intn(4)]
}
