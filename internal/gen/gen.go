// Package gen generates random documents valid with respect to a DTD.
// It is the test harness' instance generator: property-based tests draw
// random valid documents, prune them with inferred projectors, and check
// Thm. 4.5 / Thm. 4.7 style properties against the query engine.
package gen

import (
	"math/rand"
	"strconv"

	"xmlproj/internal/dtd"
	"xmlproj/internal/tree"
)

// Options bounds document generation.
type Options struct {
	// MaxDepth bounds the element nesting depth; beyond it the generator
	// takes minimal expansions. Default 8.
	MaxDepth int
	// MaxRepeat bounds the repetitions generated for * and + (beyond the
	// mandatory one). Default 3.
	MaxRepeat int
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MaxRepeat <= 0 {
		o.MaxRepeat = 3
	}
	return o
}

// Generator draws random valid documents from a DTD.
type Generator struct {
	d    *dtd.DTD
	rng  *rand.Rand
	opts Options
	// minDepth[n] is the minimal element depth needed to close a subtree
	// rooted at n; used to force termination on recursive DTDs.
	minDepth map[dtd.Name]int
	serial   int
}

// New returns a deterministic generator seeded with seed.
func New(d *dtd.DTD, seed int64, opts Options) *Generator {
	g := &Generator{d: d, rng: rand.New(rand.NewSource(seed)), opts: opts.withDefaults()}
	g.computeMinDepths()
	return g
}

// Document generates one random valid document.
func (g *Generator) Document() *tree.Document {
	root := g.element(g.d.Root, 0)
	return tree.NewDocument(root)
}

func (g *Generator) element(n dtd.Name, depth int) *tree.Node {
	def := g.d.Def(n)
	el := tree.NewElement(def.Tag)
	for i := range def.Atts {
		ad := &def.Atts[i]
		if !ad.Required && g.rng.Intn(2) == 0 {
			continue
		}
		el.SetAttr(ad.Attr, g.attrValue(ad))
	}
	for _, c := range g.sequence(def.Content, depth) {
		if c.IsText() {
			el.Append(tree.NewText(g.text()))
		} else {
			el.Append(g.element(c, depth+1))
		}
	}
	return el
}

func (g *Generator) attrValue(ad *dtd.AttDef) string {
	if ad.Fixed != "" {
		return ad.Fixed
	}
	if len(ad.Enum) > 0 {
		return ad.Enum[g.rng.Intn(len(ad.Enum))]
	}
	g.serial++
	switch ad.Type {
	case "ID":
		return "id" + strconv.Itoa(g.serial)
	case "IDREF":
		return "id" + strconv.Itoa(1+g.rng.Intn(g.serial))
	default:
		return words[g.rng.Intn(len(words))] + strconv.Itoa(g.rng.Intn(100))
	}
}

var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "Dante", "Boccaccio",
}

func (g *Generator) text() string {
	n := 1 + g.rng.Intn(3)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[g.rng.Intn(len(words))]
	}
	return out
}

// sequence draws a random word of the content-model language. When the
// depth budget is exhausted it takes minimal expansions (empty for
// nullable nodes, cheapest alternative otherwise).
func (g *Generator) sequence(r dtd.Regex, depth int) []dtd.Name {
	tight := depth >= g.opts.MaxDepth
	switch x := r.(type) {
	case dtd.Epsilon, nil:
		return nil
	case dtd.Ref:
		return []dtd.Name{x.Name}
	case dtd.Seq:
		var out []dtd.Name
		for _, it := range x.Items {
			out = append(out, g.sequence(it, depth)...)
		}
		return out
	case dtd.Alt:
		if tight {
			return g.sequence(g.cheapest(x.Items), depth)
		}
		return g.sequence(x.Items[g.rng.Intn(len(x.Items))], depth)
	case dtd.Star:
		if tight {
			return nil
		}
		var out []dtd.Name
		for i := g.rng.Intn(g.opts.MaxRepeat + 1); i > 0; i-- {
			out = append(out, g.sequence(x.Inner, depth)...)
		}
		return out
	case dtd.Plus:
		out := g.sequence(x.Inner, depth)
		if !tight {
			for i := g.rng.Intn(g.opts.MaxRepeat); i > 0; i-- {
				out = append(out, g.sequence(x.Inner, depth)...)
			}
		}
		return out
	case dtd.Opt:
		if tight || g.rng.Intn(2) == 0 {
			return nil
		}
		return g.sequence(x.Inner, depth)
	}
	return nil
}

// cheapest picks the alternative with the smallest minimal depth.
func (g *Generator) cheapest(items []dtd.Regex) dtd.Regex {
	best, bestCost := items[0], 1<<30
	for _, it := range items {
		if c := g.regexMinDepth(it); c < bestCost {
			best, bestCost = it, c
		}
	}
	return best
}

const inf = 1 << 20

// computeMinDepths runs a fixpoint for the minimal closing depth of each
// name.
func (g *Generator) computeMinDepths() {
	g.minDepth = map[dtd.Name]int{}
	for _, n := range g.d.Names() {
		if g.d.Def(n).Text {
			g.minDepth[n] = 0
		} else {
			g.minDepth[n] = inf
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.d.Names() {
			def := g.d.Def(n)
			if def.Text {
				continue
			}
			c := 1 + g.regexMinDepth(def.Content)
			if c < g.minDepth[n] {
				g.minDepth[n] = c
				changed = true
			}
		}
	}
}

// regexMinDepth is the minimal element depth of any word of r.
func (g *Generator) regexMinDepth(r dtd.Regex) int {
	switch x := r.(type) {
	case dtd.Epsilon, nil:
		return 0
	case dtd.Ref:
		return g.minDepth[x.Name]
	case dtd.Seq:
		m := 0
		for _, it := range x.Items {
			if c := g.regexMinDepth(it); c > m {
				m = c
			}
		}
		return m
	case dtd.Alt:
		m := inf
		for _, it := range x.Items {
			if c := g.regexMinDepth(it); c < m {
				m = c
			}
		}
		return m
	case dtd.Star, dtd.Opt:
		return 0
	case dtd.Plus:
		return g.regexMinDepth(x.Inner)
	}
	return 0
}
